//! Sort checking for terms.

use std::collections::BTreeMap;
use std::fmt;

use crate::sort::Sort;
use crate::term::Term;

/// A sort error found while checking a term.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SortError {
    /// An operand of an operation had the wrong sort.
    Mismatch {
        /// Description of the operation.
        context: &'static str,
        /// The expected sort.
        expected: Sort,
        /// The sort found.
        found: Sort,
    },
    /// The two sides of an equality / branches of an `Ite` differ in sort.
    Incomparable(Sort, Sort),
    /// The same variable name is used at two different sorts.
    InconsistentVariable {
        /// The variable name.
        name: String,
        /// The first sort observed.
        first: Sort,
        /// The conflicting sort.
        second: Sort,
    },
}

impl fmt::Display for SortError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SortError::Mismatch {
                context,
                expected,
                found,
            } => write!(f, "{context}: expected {expected}, found {found}"),
            SortError::Incomparable(a, b) => write!(f, "incomparable sorts {a} and {b}"),
            SortError::InconsistentVariable {
                name,
                first,
                second,
            } => write!(f, "variable `{name}` used at sorts {first} and {second}"),
        }
    }
}

impl std::error::Error for SortError {}

struct Checker {
    vars: BTreeMap<String, Sort>,
}

impl Checker {
    fn expect(&mut self, t: &Term, expected: Sort, context: &'static str) -> Result<(), SortError> {
        let found = self.check(t)?;
        if found == expected {
            Ok(())
        } else {
            Err(SortError::Mismatch {
                context,
                expected,
                found,
            })
        }
    }

    fn record_var(&mut self, name: &str, sort: Sort) -> Result<(), SortError> {
        if let Some(&prev) = self.vars.get(name) {
            if prev != sort {
                return Err(SortError::InconsistentVariable {
                    name: name.to_string(),
                    first: prev,
                    second: sort,
                });
            }
        } else {
            self.vars.insert(name.to_string(), sort);
        }
        Ok(())
    }

    fn check(&mut self, t: &Term) -> Result<Sort, SortError> {
        use Term::*;
        Ok(match t {
            Var(v) => {
                self.record_var(&v.name, v.sort)?;
                v.sort
            }
            BoolLit(_) => Sort::Bool,
            IntLit(_) => Sort::Int,
            Null => Sort::Elem,

            Not(a) => {
                self.expect(a, Sort::Bool, "not")?;
                Sort::Bool
            }
            And(cs) | Or(cs) => {
                for c in cs {
                    self.expect(c, Sort::Bool, "and/or")?;
                }
                Sort::Bool
            }
            Implies(a, b) | Iff(a, b) => {
                self.expect(a, Sort::Bool, "implies/iff")?;
                self.expect(b, Sort::Bool, "implies/iff")?;
                Sort::Bool
            }
            Ite(c, x, y) => {
                self.expect(c, Sort::Bool, "ite condition")?;
                let sx = self.check(x)?;
                let sy = self.check(y)?;
                if sx != sy {
                    return Err(SortError::Incomparable(sx, sy));
                }
                sx
            }
            Eq(a, b) => {
                let sa = self.check(a)?;
                let sb = self.check(b)?;
                if sa != sb {
                    return Err(SortError::Incomparable(sa, sb));
                }
                Sort::Bool
            }

            Add(a, b) | Sub(a, b) => {
                self.expect(a, Sort::Int, "arithmetic")?;
                self.expect(b, Sort::Int, "arithmetic")?;
                Sort::Int
            }
            Neg(a) => {
                self.expect(a, Sort::Int, "negation")?;
                Sort::Int
            }
            Lt(a, b) | Le(a, b) => {
                self.expect(a, Sort::Int, "comparison")?;
                self.expect(b, Sort::Int, "comparison")?;
                Sort::Bool
            }

            EmptySet => Sort::Set,
            SetAdd(s, v) | SetRemove(s, v) => {
                self.expect(s, Sort::Set, "set update")?;
                self.expect(v, Sort::Elem, "set update")?;
                Sort::Set
            }
            Member(v, s) => {
                self.expect(v, Sort::Elem, "member")?;
                self.expect(s, Sort::Set, "member")?;
                Sort::Bool
            }
            Card(s) => {
                self.expect(s, Sort::Set, "card")?;
                Sort::Int
            }

            EmptyMap => Sort::Map,
            MapPut(m, k, v) => {
                self.expect(m, Sort::Map, "map put")?;
                self.expect(k, Sort::Elem, "map put")?;
                self.expect(v, Sort::Elem, "map put")?;
                Sort::Map
            }
            MapRemove(m, k) => {
                self.expect(m, Sort::Map, "map remove")?;
                self.expect(k, Sort::Elem, "map remove")?;
                Sort::Map
            }
            MapGet(m, k) => {
                self.expect(m, Sort::Map, "map get")?;
                self.expect(k, Sort::Elem, "map get")?;
                Sort::Elem
            }
            MapHasKey(m, k) => {
                self.expect(m, Sort::Map, "map has-key")?;
                self.expect(k, Sort::Elem, "map has-key")?;
                Sort::Bool
            }
            MapSize(m) => {
                self.expect(m, Sort::Map, "map size")?;
                Sort::Int
            }

            EmptySeq => Sort::Seq,
            SeqInsertAt(s, i, v) | SeqSetAt(s, i, v) => {
                self.expect(s, Sort::Seq, "seq update")?;
                self.expect(i, Sort::Int, "seq update")?;
                self.expect(v, Sort::Elem, "seq update")?;
                Sort::Seq
            }
            SeqRemoveAt(s, i) => {
                self.expect(s, Sort::Seq, "seq remove-at")?;
                self.expect(i, Sort::Int, "seq remove-at")?;
                Sort::Seq
            }
            SeqAt(s, i) => {
                self.expect(s, Sort::Seq, "seq at")?;
                self.expect(i, Sort::Int, "seq at")?;
                Sort::Elem
            }
            SeqLen(s) => {
                self.expect(s, Sort::Seq, "seq len")?;
                Sort::Int
            }
            SeqIndexOf(s, v) | SeqLastIndexOf(s, v) => {
                self.expect(s, Sort::Seq, "seq index-of")?;
                self.expect(v, Sort::Elem, "seq index-of")?;
                Sort::Int
            }
            SeqContains(s, v) => {
                self.expect(s, Sort::Seq, "seq contains")?;
                self.expect(v, Sort::Elem, "seq contains")?;
                Sort::Bool
            }

            ForallInt { var, lo, hi, body } | ExistsInt { var, lo, hi, body } => {
                self.expect(lo, Sort::Int, "quantifier bound")?;
                self.expect(hi, Sort::Int, "quantifier bound")?;
                // The bound variable shadows any outer use; check the body in a
                // scope where `var` has sort Int.
                let saved = self.vars.insert(var.clone(), Sort::Int);
                self.expect(body, Sort::Bool, "quantifier body")?;
                match saved {
                    Some(s) => {
                        self.vars.insert(var.clone(), s);
                    }
                    None => {
                        self.vars.remove(var);
                    }
                }
                Sort::Bool
            }
        })
    }
}

/// Computes the sort of `term`, checking that it is well-sorted and that every
/// variable name is used at a single sort.
///
/// # Errors
///
/// Returns a [`SortError`] describing the first problem found.
pub fn sort_of(term: &Term) -> Result<Sort, SortError> {
    Checker {
        vars: BTreeMap::new(),
    }
    .check(term)
}

/// Checks that `term` is a well-sorted formula (sort [`Sort::Bool`]).
///
/// # Errors
///
/// Returns a [`SortError`] if the term is ill-sorted or not boolean.
pub fn check_formula(term: &Term) -> Result<(), SortError> {
    match sort_of(term)? {
        Sort::Bool => Ok(()),
        other => Err(SortError::Mismatch {
            context: "formula",
            expected: Sort::Bool,
            found: other,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::*;

    #[test]
    fn well_sorted_formulas() {
        assert_eq!(sort_of(&tru()).unwrap(), Sort::Bool);
        assert_eq!(
            sort_of(&member(var_elem("v"), set_add(var_set("s"), var_elem("v")))).unwrap(),
            Sort::Bool
        );
        assert_eq!(
            sort_of(&map_get(var_map("m"), var_elem("k"))).unwrap(),
            Sort::Elem
        );
        assert_eq!(
            sort_of(&seq_index_of(var_seq("q"), var_elem("v"))).unwrap(),
            Sort::Int
        );
        assert!(check_formula(&eq(card(var_set("s")), int(3))).is_ok());
    }

    #[test]
    fn ill_sorted_operands_are_rejected() {
        assert!(matches!(
            sort_of(&card(var_elem("v"))),
            Err(SortError::Mismatch { .. })
        ));
        assert!(matches!(
            sort_of(&eq(int(1), tru())),
            Err(SortError::Incomparable(_, _))
        ));
        assert!(check_formula(&int(3)).is_err());
    }

    #[test]
    fn inconsistent_variable_sorts_are_rejected() {
        let t = and2(
            member(var_elem("x"), var_set("s")),
            eq(var_int("x"), int(1)),
        );
        assert!(matches!(
            sort_of(&t),
            Err(SortError::InconsistentVariable { .. })
        ));
    }

    #[test]
    fn quantifier_binder_shadows_outer_sort() {
        // Outer `i` is an element, inner quantified `i` is an integer: allowed,
        // because the binder introduces a fresh scope.
        let t = and2(
            eq(var_elem("i"), null()),
            exists_int("i", int(0), int(2), eq(var_int("i"), int(1))),
        );
        assert!(check_formula(&t).is_ok());
    }

    #[test]
    fn error_display_mentions_details() {
        let e = SortError::InconsistentVariable {
            name: "x".into(),
            first: Sort::Int,
            second: Sort::Elem,
        };
        let s = e.to_string();
        assert!(s.contains("x") && s.contains("int") && s.contains("obj"));
    }
}
