//! Concrete values of the specification logic.

use std::fmt;

use crate::pvalue::{PMap, PSeq, PSet};
use crate::sort::Sort;

/// An opaque object identity.
///
/// Elements are the universe over which the abstract sets, maps, and sequences
/// range. The distinguished [`NULL_ELEM`] plays the role of Java's `null` in
/// the paper's specifications (operation preconditions typically require
/// arguments to be non-null; `get` and `put` return `null` to signal an absent
/// mapping).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ElemId(pub u32);

/// The distinguished `null` object identity.
pub const NULL_ELEM: ElemId = ElemId(u32::MAX);

impl ElemId {
    /// Returns `true` if this is the `null` object.
    pub fn is_null(self) -> bool {
        self == NULL_ELEM
    }
}

impl fmt::Display for ElemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_null() {
            write!(f, "null")
        } else {
            write!(f, "o{}", self.0)
        }
    }
}

/// A concrete value of the specification logic.
///
/// Values are what terms evaluate to under a [`crate::Model`]. Collection
/// values are backed by ordered containers so that `Value` has a total order
/// and a deterministic `Debug`/`Display` representation, which keeps
/// counterexample reporting and test output stable.
///
/// Collection payloads are *persistent* structurally-shared trees
/// ([`PSet`] / [`PMap`] / [`PSeq`]): cloning a collection value is an O(1)
/// reference-count increment, and updating a shared collection path-copies
/// O(log n) tree nodes (an unshared one is updated in place). Equality,
/// ordering, hashing, and iteration are structural and identical to the
/// eager `BTreeSet` / `BTreeMap` / `Vec` representation; the accessors
/// [`Value::as_set`] / [`Value::as_map`] / [`Value::as_seq`] hand out
/// borrowed views of the persistent handles, whose read API (`contains`,
/// `get`, `len`, `iter`, indexing, …) mirrors the eager types'.
///
/// # Example
///
/// ```
/// use semcommute_logic::{ElemId, Value};
///
/// let s = Value::set_of([ElemId(1), ElemId(2)]);
/// let cheap = s.clone(); // O(1): shares the backing set
/// assert_eq!(s, cheap);
/// assert!(s.as_set().unwrap().contains(&ElemId(1)));
/// assert_eq!(s.to_string(), "{o1, o2}");
///
/// // Updates go through the copy-on-write handle: the clone is unaffected.
/// let mut grown = s.clone();
/// if let Value::Set(set) = &mut grown {
///     set.insert(ElemId(3));
/// }
/// assert_eq!(s.as_set().unwrap().len(), 2);
/// assert_eq!(grown.as_set().unwrap().len(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// A boolean.
    Bool(bool),
    /// An integer.
    Int(i64),
    /// An object identity (possibly `null`).
    Elem(ElemId),
    /// A finite set of objects — abstract state of the set data structures.
    Set(PSet),
    /// A finite partial map — abstract state of the map data structures.
    Map(PMap),
    /// A finite sequence — abstract state of `ArrayList`.
    Seq(PSeq),
}

impl Value {
    /// The sort of this value.
    pub fn sort(&self) -> Sort {
        match self {
            Value::Bool(_) => Sort::Bool,
            Value::Int(_) => Sort::Int,
            Value::Elem(_) => Sort::Elem,
            Value::Set(_) => Sort::Set,
            Value::Map(_) => Sort::Map,
            Value::Seq(_) => Sort::Seq,
        }
    }

    /// Convenience constructor for a non-null element value.
    pub fn elem(id: u32) -> Value {
        Value::Elem(ElemId(id))
    }

    /// The `null` element value.
    pub fn null() -> Value {
        Value::Elem(NULL_ELEM)
    }

    /// Convenience constructor for a set value.
    pub fn set_of<I: IntoIterator<Item = ElemId>>(items: I) -> Value {
        Value::Set(items.into_iter().collect())
    }

    /// Convenience constructor for a map value.
    pub fn map_of<I: IntoIterator<Item = (ElemId, ElemId)>>(items: I) -> Value {
        Value::Map(items.into_iter().collect())
    }

    /// Convenience constructor for a sequence value.
    pub fn seq_of<I: IntoIterator<Item = ElemId>>(items: I) -> Value {
        Value::Seq(items.into_iter().collect())
    }

    /// Returns the image of this value under an element relabeling `f`:
    /// element values map to `f(e)`, collections relabel element-wise (map
    /// keys and values together), and booleans/integers are untouched.
    ///
    /// When `f` is a *permutation* of (non-null) element identities this is
    /// the action the logic cannot observe: no term distinguishes a model
    /// from its consistently relabeled image, which is what makes the
    /// prover's orbit-canonical enumeration sound. `f` is never applied to
    /// [`NULL_ELEM`] — `null` is a logical constant, not an identity.
    pub fn map_elems(&self, f: impl Fn(ElemId) -> ElemId) -> Value {
        let f = |e: ElemId| if e.is_null() { e } else { f(e) };
        match self {
            Value::Bool(_) | Value::Int(_) => self.clone(),
            Value::Elem(e) => Value::Elem(f(*e)),
            Value::Set(s) => Value::Set(s.map_elems(f)),
            Value::Map(m) => Value::Map(m.map_elems(f)),
            Value::Seq(q) => Value::Seq(q.map_elems(f)),
        }
    }

    /// Returns the boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the integer payload, if this is an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the element payload, if this is an element.
    pub fn as_elem(&self) -> Option<ElemId> {
        match self {
            Value::Elem(e) => Some(*e),
            _ => None,
        }
    }

    /// Returns a borrowed view of the set payload, if this is a set.
    pub fn as_set(&self) -> Option<&PSet> {
        match self {
            Value::Set(s) => Some(s),
            _ => None,
        }
    }

    /// Returns a borrowed view of the map payload, if this is a map.
    pub fn as_map(&self) -> Option<&PMap> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Returns a borrowed view of the sequence payload, if this is a
    /// sequence.
    pub fn as_seq(&self) -> Option<&PSeq> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Elem(e) => write!(f, "{e}"),
            Value::Set(s) => {
                write!(f, "{{")?;
                for (i, e) in s.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, "}}")
            }
            Value::Map(m) => {
                write!(f, "{{")?;
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{k} -> {v}")?;
                }
                write!(f, "}}")
            }
            Value::Seq(s) => {
                write!(f, "[")?;
                for (i, e) in s.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, "]")
            }
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<ElemId> for Value {
    fn from(e: ElemId) -> Self {
        Value::Elem(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_is_null() {
        assert!(NULL_ELEM.is_null());
        assert!(!ElemId(0).is_null());
        assert_eq!(Value::null(), Value::Elem(NULL_ELEM));
    }

    #[test]
    fn sorts_of_values() {
        assert_eq!(Value::Bool(true).sort(), Sort::Bool);
        assert_eq!(Value::Int(3).sort(), Sort::Int);
        assert_eq!(Value::elem(1).sort(), Sort::Elem);
        assert_eq!(Value::set_of([ElemId(1)]).sort(), Sort::Set);
        assert_eq!(Value::map_of([(ElemId(1), ElemId(2))]).sort(), Sort::Map);
        assert_eq!(Value::seq_of([ElemId(1)]).sort(), Sort::Seq);
    }

    #[test]
    fn map_elems_acts_on_every_shape_and_fixes_null() {
        let bump = |e: ElemId| ElemId(e.0 + 10);
        assert_eq!(Value::Bool(true).map_elems(bump), Value::Bool(true));
        assert_eq!(Value::Int(-3).map_elems(bump), Value::Int(-3));
        assert_eq!(Value::elem(1).map_elems(bump), Value::elem(11));
        assert_eq!(Value::null().map_elems(bump), Value::null());
        assert_eq!(
            Value::set_of([ElemId(1), ElemId(2)]).map_elems(bump),
            Value::set_of([ElemId(11), ElemId(12)])
        );
        assert_eq!(
            Value::map_of([(ElemId(1), ElemId(2))]).map_elems(bump),
            Value::map_of([(ElemId(11), ElemId(12))])
        );
        assert_eq!(
            Value::seq_of([ElemId(2), NULL_ELEM]).map_elems(bump),
            Value::seq_of([ElemId(12), NULL_ELEM])
        );
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(
            Value::set_of([ElemId(1), ElemId(2)]).to_string(),
            "{o1, o2}"
        );
        assert_eq!(
            Value::map_of([(ElemId(1), ElemId(2))]).to_string(),
            "{o1 -> o2}"
        );
        assert_eq!(
            Value::seq_of([ElemId(3), NULL_ELEM]).to_string(),
            "[o3, null]"
        );
        assert_eq!(Value::null().to_string(), "null");
    }

    #[test]
    fn accessors_match_variants() {
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::elem(4).as_elem(), Some(ElemId(4)));
        assert!(Value::Bool(true).as_int().is_none());
        assert!(Value::set_of([]).as_set().is_some());
        assert!(Value::map_of([]).as_map().is_some());
        assert!(Value::seq_of([]).as_seq().is_some());
    }

    #[test]
    fn set_deduplicates_and_orders() {
        let v = Value::set_of([ElemId(2), ElemId(1), ElemId(2)]);
        assert_eq!(v.as_set().unwrap().len(), 2);
        assert_eq!(v.to_string(), "{o1, o2}");
    }
}
