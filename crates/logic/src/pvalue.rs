//! Persistent, cheaply-clonable collection payloads for [`Value`].
//!
//! The finite-model prover evaluates the same obligation under millions of
//! candidate models, and almost every step of that evaluation *reads* a
//! collection (membership tests, lookups, lengths, equality) while only a
//! handful of steps *update* one (the functional `s ∪ {v}` / `m[k := v]` /
//! `insert_at` algebra). With eager `BTreeSet` / `BTreeMap` / `Vec` payloads
//! every read that moves a value out of a slot pays a full deep copy.
//!
//! [`PSet`], [`PMap`], and [`PSeq`] replace those payloads with shared
//! copy-on-write handles:
//!
//! * **`clone` is O(1)** — an atomic reference-count increment, no allocation.
//!   Reading a collection out of an evaluation slot, enumerating a candidate
//!   model, or reconstructing a counterexample never copies element data.
//! * **Updates copy on write** — a mutation through [`PSet::insert`] and
//!   friends clones the backing collection only when the handle is shared
//!   (`Arc::make_mut`); a handle with reference count 1 is updated in place,
//!   so chained updates (`((s ∪ {v1}) ∪ {v2}) \ {v3}`) copy at most once.
//! * **Structural semantics are unchanged** — `Eq`, `Ord`, and `Hash` delegate
//!   to the backing ordered collection, so ordering, equality, hashing, and
//!   iteration order are exactly those of the eager representation. Two
//!   handles that share storage short-circuit comparison through
//!   [`PSet::ptr_eq`] before falling back to the structural walk.
//!
//! Each handle [`Deref`]s to its backing collection, so the whole read API of
//! `BTreeSet` / `BTreeMap` / `Vec` (`contains`, `get`, `len`, `iter`,
//! indexing, …) is available on a handle without any conversion. The empty
//! collection of each shape is a lazily-initialized process-wide singleton:
//! constructing an empty value ([`PSet::new`], or evaluating the `{}` /
//! `[]` literals) allocates nothing.
//!
//! [`Value`]: crate::Value

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::ops::Deref;
use std::sync::{Arc, OnceLock};

use crate::value::ElemId;

/// Implements the representation-independent trait surface shared by the
/// three persistent handles: `Deref` to the backing collection, structural
/// `Eq` / `Ord` / `Hash` with a pointer-equality fast path, a `Debug` that is
/// indistinguishable from the eager collection's, and conversions from the
/// eager representation.
macro_rules! persistent_handle {
    ($name:ident, $backing:ty, $item:ty) => {
        impl Deref for $name {
            type Target = $backing;

            fn deref(&self) -> &$backing {
                &self.0
            }
        }

        impl PartialEq for $name {
            fn eq(&self, other: &Self) -> bool {
                self.ptr_eq(other) || *self.0 == *other.0
            }
        }

        impl Eq for $name {}

        impl PartialOrd for $name {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }

        impl Ord for $name {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                if self.ptr_eq(other) {
                    std::cmp::Ordering::Equal
                } else {
                    self.0.cmp(&other.0)
                }
            }
        }

        impl std::hash::Hash for $name {
            fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
                self.0.hash(state)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                self.0.fmt(f)
            }
        }

        impl Default for $name {
            fn default() -> Self {
                Self::new()
            }
        }

        impl From<$backing> for $name {
            fn from(inner: $backing) -> Self {
                $name(Arc::new(inner))
            }
        }

        impl From<$name> for $backing {
            fn from(handle: $name) -> Self {
                // A uniquely-owned handle gives its backing collection away
                // without copying; a shared one clones it.
                Arc::try_unwrap(handle.0).unwrap_or_else(|shared| (*shared).clone())
            }
        }

        impl FromIterator<$item> for $name {
            fn from_iter<I: IntoIterator<Item = $item>>(items: I) -> Self {
                $name(Arc::new(items.into_iter().collect()))
            }
        }

        impl $name {
            /// Returns `true` if `self` and `other` share backing storage.
            ///
            /// Shared storage implies structural equality (never the
            /// converse); `Eq` and `Ord` use this as a short-circuit before
            /// walking the collections. Tests use it to observe copy-on-write
            /// behavior: a clone shares storage with its original until one
            /// of the two is mutated.
            pub fn ptr_eq(&self, other: &Self) -> bool {
                Arc::ptr_eq(&self.0, &other.0)
            }

            /// Clones out the backing eager collection.
            ///
            /// This is the explicit deep copy that `clone` no longer
            /// performs; callers that need an independent eager collection
            /// (e.g. the runtime's abstract-state snapshots) pay for it here.
            pub fn to_inner(&self) -> $backing {
                (*self.0).clone()
            }
        }
    };
}

/// A persistent finite set of [`ElemId`]s — the copy-on-write payload of
/// [`Value::Set`](crate::Value::Set).
///
/// Dereferences to [`BTreeSet<ElemId>`] for the whole read API; `clone` is
/// O(1); [`PSet::insert`] / [`PSet::remove`] copy the backing set only when
/// the handle is shared.
///
/// # Example
///
/// ```
/// use semcommute_logic::pvalue::PSet;
/// use semcommute_logic::ElemId;
///
/// let s: PSet = [ElemId(1), ElemId(2)].into_iter().collect();
/// let mut t = s.clone(); // O(1): shares storage with `s`
/// assert!(t.ptr_eq(&s));
///
/// t.insert(ElemId(3)); // copy-on-write: `s` is unaffected
/// assert!(!t.ptr_eq(&s));
/// assert_eq!(s.len(), 2);
/// assert_eq!(t.len(), 3);
/// ```
#[derive(Clone)]
pub struct PSet(Arc<BTreeSet<ElemId>>);

persistent_handle!(PSet, BTreeSet<ElemId>, ElemId);

impl PSet {
    /// The empty set. Returns a handle to a process-wide shared empty
    /// instance; no allocation happens until the first mutation.
    pub fn new() -> PSet {
        static EMPTY: OnceLock<Arc<BTreeSet<ElemId>>> = OnceLock::new();
        PSet(EMPTY.get_or_init(|| Arc::new(BTreeSet::new())).clone())
    }

    /// Inserts `elem`, copying the backing set first if the handle is shared.
    /// Returns `true` if the element was not already present.
    pub fn insert(&mut self, elem: ElemId) -> bool {
        // Refcount-1 fast path: mutate in place, one tree walk.
        if let Some(inner) = Arc::get_mut(&mut self.0) {
            return inner.insert(elem);
        }
        if self.0.contains(&elem) {
            // Read-only no-op on a shared handle: never copies sharing away.
            return false;
        }
        Arc::make_mut(&mut self.0).insert(elem)
    }

    /// Returns the image of this set under an element relabeling: every
    /// member `e` is replaced by `f(e)`.
    ///
    /// When `f` is injective on the members (the orbit-reduction use case:
    /// `f` is a permutation of a block of anonymous elements) the image has
    /// the same cardinality. When `f` fixes every member, the original
    /// handle is returned unchanged (O(1), shares storage).
    pub fn map_elems(&self, f: impl Fn(ElemId) -> ElemId) -> PSet {
        if self.iter().all(|&e| f(e) == e) {
            return self.clone();
        }
        self.iter().map(|&e| f(e)).collect()
    }

    /// Removes `elem`, copying the backing set first if the handle is shared.
    /// Returns `true` if the element was present.
    pub fn remove(&mut self, elem: &ElemId) -> bool {
        // Refcount-1 fast path: mutate in place, one tree walk.
        if let Some(inner) = Arc::get_mut(&mut self.0) {
            return inner.remove(elem);
        }
        if !self.0.contains(elem) {
            // Read-only no-op on a shared handle: never copies sharing away.
            return false;
        }
        Arc::make_mut(&mut self.0).remove(elem)
    }
}

/// A persistent finite partial map from [`ElemId`] to [`ElemId`] — the
/// copy-on-write payload of [`Value::Map`](crate::Value::Map).
///
/// Dereferences to [`BTreeMap<ElemId, ElemId>`] for the whole read API;
/// `clone` is O(1); [`PMap::insert`] / [`PMap::remove`] copy the backing map
/// only when the handle is shared.
#[derive(Clone)]
pub struct PMap(Arc<BTreeMap<ElemId, ElemId>>);

persistent_handle!(PMap, BTreeMap<ElemId, ElemId>, (ElemId, ElemId));

impl PMap {
    /// The empty map. Returns a handle to a process-wide shared empty
    /// instance; no allocation happens until the first mutation.
    pub fn new() -> PMap {
        static EMPTY: OnceLock<Arc<BTreeMap<ElemId, ElemId>>> = OnceLock::new();
        PMap(EMPTY.get_or_init(|| Arc::new(BTreeMap::new())).clone())
    }

    /// Binds `key` to `value`, copying the backing map first if the handle is
    /// shared. Returns the previous binding of `key`, if any.
    pub fn insert(&mut self, key: ElemId, value: ElemId) -> Option<ElemId> {
        // Refcount-1 fast path: mutate in place, one tree walk.
        if let Some(inner) = Arc::get_mut(&mut self.0) {
            return inner.insert(key, value);
        }
        if self.0.get(&key) == Some(&value) {
            // Rebinding a key to its current value: observably a no-op.
            return Some(value);
        }
        Arc::make_mut(&mut self.0).insert(key, value)
    }

    /// Returns the image of this map under an element relabeling: every
    /// binding `k ↦ v` is replaced by `f(k) ↦ f(v)`.
    ///
    /// Keys and values relabel *together* — a permutation of anonymous
    /// elements must act on the whole model uniformly for evaluation to be
    /// invariant (`get(π(k))` on the image equals `π(get(k))` on the
    /// original). When `f` fixes every key and value, the original handle is
    /// returned unchanged (O(1), shares storage).
    pub fn map_elems(&self, f: impl Fn(ElemId) -> ElemId) -> PMap {
        if self.iter().all(|(&k, &v)| f(k) == k && f(v) == v) {
            return self.clone();
        }
        self.iter().map(|(&k, &v)| (f(k), f(v))).collect()
    }

    /// Removes the binding for `key`, copying the backing map first if the
    /// handle is shared. Returns the removed value, if any.
    pub fn remove(&mut self, key: &ElemId) -> Option<ElemId> {
        // Refcount-1 fast path: mutate in place, one tree walk.
        if let Some(inner) = Arc::get_mut(&mut self.0) {
            return inner.remove(key);
        }
        if !self.0.contains_key(key) {
            // Read-only no-op on a shared handle: never copies sharing away.
            return None;
        }
        Arc::make_mut(&mut self.0).remove(key)
    }
}

/// A persistent finite sequence of [`ElemId`]s — the copy-on-write payload of
/// [`Value::Seq`](crate::Value::Seq).
///
/// Dereferences to [`Vec<ElemId>`] for the whole read API (indexing, `len`,
/// `iter`, `contains`, …); `clone` is O(1); the update operations copy the
/// backing vector only when the handle is shared.
#[derive(Clone)]
pub struct PSeq(Arc<Vec<ElemId>>);

persistent_handle!(PSeq, Vec<ElemId>, ElemId);

impl PSeq {
    /// The empty sequence. Returns a handle to a process-wide shared empty
    /// instance; no allocation happens until the first mutation.
    pub fn new() -> PSeq {
        static EMPTY: OnceLock<Arc<Vec<ElemId>>> = OnceLock::new();
        PSeq(EMPTY.get_or_init(|| Arc::new(Vec::new())).clone())
    }

    /// Appends `elem`, copying the backing vector first if the handle is
    /// shared.
    pub fn push(&mut self, elem: ElemId) {
        Arc::make_mut(&mut self.0).push(elem)
    }

    /// Inserts `elem` at position `index` (shifting later elements), copying
    /// the backing vector first if the handle is shared.
    ///
    /// # Panics
    ///
    /// Panics if `index > len` — callers clamp, matching the evaluator's
    /// totalized `insert_at` semantics.
    pub fn insert(&mut self, index: usize, elem: ElemId) {
        Arc::make_mut(&mut self.0).insert(index, elem)
    }

    /// Removes and returns the element at `index` (shifting later elements),
    /// copying the backing vector first if the handle is shared.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len` — callers bounds-check, matching the
    /// evaluator's totalized `remove_at` semantics (out-of-range removal is a
    /// no-op there).
    pub fn remove(&mut self, index: usize) -> ElemId {
        Arc::make_mut(&mut self.0).remove(index)
    }

    /// Returns the image of this sequence under an element relabeling: the
    /// element at each position is replaced by its `f`-image (positions are
    /// untouched — a relabeling permutes identities, not indices).
    ///
    /// When `f` fixes every element, the original handle is returned
    /// unchanged (O(1), shares storage).
    pub fn map_elems(&self, f: impl Fn(ElemId) -> ElemId) -> PSeq {
        if self.iter().all(|&e| f(e) == e) {
            return self.clone();
        }
        self.iter().map(|&e| f(e)).collect()
    }

    /// Overwrites the element at `index`, copying the backing vector first if
    /// the handle is shared.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len` — callers bounds-check, matching the
    /// evaluator's totalized `set_at` semantics.
    pub fn set(&mut self, index: usize, elem: ElemId) {
        // Refcount-1 fast path: mutate in place, no equality probe needed.
        if let Some(inner) = Arc::get_mut(&mut self.0) {
            inner[index] = elem;
            return;
        }
        if self.0[index] == elem {
            // Writing the value already there: observably a no-op.
            return;
        }
        Arc::make_mut(&mut self.0)[index] = elem;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_handles_share_the_singleton() {
        assert!(PSet::new().ptr_eq(&PSet::new()));
        assert!(PMap::new().ptr_eq(&PMap::new()));
        assert!(PSeq::new().ptr_eq(&PSeq::new()));
        assert!(PSet::new().is_empty());
        assert!(PMap::new().is_empty());
        assert!(PSeq::new().is_empty());
    }

    #[test]
    fn clone_shares_until_mutation() {
        let a: PSet = [ElemId(1)].into_iter().collect();
        let mut b = a.clone();
        assert!(a.ptr_eq(&b));
        b.insert(ElemId(2));
        assert!(!a.ptr_eq(&b));
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn unique_handles_mutate_in_place() {
        let mut s: PSeq = [ElemId(1), ElemId(2)].into_iter().collect();
        let before = Arc::as_ptr(&s.0);
        s.push(ElemId(3));
        s.set(0, ElemId(9));
        assert_eq!(Arc::as_ptr(&s.0), before, "refcount-1 mutation reallocated");
    }

    #[test]
    fn no_op_mutations_preserve_sharing() {
        let a: PSet = [ElemId(1)].into_iter().collect();
        let mut b = a.clone();
        b.remove(&ElemId(7)); // absent: no copy
        assert!(a.ptr_eq(&b));

        let m: PMap = [(ElemId(1), ElemId(2))].into_iter().collect();
        let mut n = m.clone();
        assert_eq!(n.insert(ElemId(1), ElemId(2)), Some(ElemId(2)));
        n.remove(&ElemId(9));
        assert!(m.ptr_eq(&n));

        let q: PSeq = [ElemId(5)].into_iter().collect();
        let mut r = q.clone();
        r.set(0, ElemId(5));
        assert!(q.ptr_eq(&r));
    }

    #[test]
    fn structural_comparison_ignores_sharing() {
        let a: PSet = [ElemId(1), ElemId(2)].into_iter().collect();
        let b: PSet = [ElemId(2), ElemId(1)].into_iter().collect();
        assert_eq!(a, b);
        assert!(!a.ptr_eq(&b));
        let c: PSet = [ElemId(3)].into_iter().collect();
        assert_eq!(a.cmp(&c), (*a).cmp(&c));
    }

    #[test]
    fn map_elems_relabels_and_preserves_sharing_on_fixpoints() {
        let swap = |e: ElemId| match e {
            ElemId(1) => ElemId(2),
            ElemId(2) => ElemId(1),
            other => other,
        };
        let s: PSet = [ElemId(1), ElemId(3)].into_iter().collect();
        assert_eq!(
            s.map_elems(swap),
            [ElemId(2), ElemId(3)].into_iter().collect()
        );
        let fixed: PSet = [ElemId(3), ElemId(4)].into_iter().collect();
        assert!(fixed.map_elems(swap).ptr_eq(&fixed));

        // Maps relabel keys and values together.
        let m: PMap = [(ElemId(1), ElemId(2)), (ElemId(3), ElemId(1))]
            .into_iter()
            .collect();
        let expected: PMap = [(ElemId(2), ElemId(1)), (ElemId(3), ElemId(2))]
            .into_iter()
            .collect();
        assert_eq!(m.map_elems(swap), expected);

        // Sequences relabel elements, never positions.
        let q: PSeq = [ElemId(2), ElemId(1), ElemId(2)].into_iter().collect();
        let expected: PSeq = [ElemId(1), ElemId(2), ElemId(1)].into_iter().collect();
        assert_eq!(q.map_elems(swap), expected);
        let fixed: PSeq = [ElemId(5)].into_iter().collect();
        assert!(fixed.map_elems(swap).ptr_eq(&fixed));
    }

    #[test]
    fn conversion_round_trips() {
        let eager: BTreeSet<ElemId> = [ElemId(4), ElemId(8)].into_iter().collect();
        let p = PSet::from(eager.clone());
        assert_eq!(p.to_inner(), eager);
        assert_eq!(BTreeSet::from(p), eager);
    }
}
