//! Persistent, cheaply-clonable collection payloads for [`Value`].
//!
//! The finite-model prover evaluates the same obligation under millions of
//! candidate models, and the speculative runtime snapshots its abstract-state
//! mirror once per pre-state-reading operation. Both workloads *clone*
//! collections far more often than they update them — and when they do
//! update, the update lands on a handle whose older revision is still alive
//! (a candidate's parent model, a transaction's logged pre-state).
//!
//! [`PSet`], [`PMap`], and [`PSeq`] are therefore **persistent trees** rather
//! than `Arc`-wrapped flat collections:
//!
//! * **`clone` is O(1)** — an atomic reference-count increment on the root,
//!   no allocation. Reading a collection out of an evaluation slot,
//!   enumerating a candidate model, or snapshotting the runtime mirror never
//!   copies element data.
//! * **Updates path-copy in O(log n)** — every node is its own [`Arc`];
//!   mutating a handle whose nodes are shared clones only the nodes on the
//!   root-to-target path (plus O(1) rotation nodes per level), leaving the
//!   rest of the tree shared with every older revision. Mutating a handle
//!   whose path happens to be uniquely owned updates those nodes in place
//!   (`Arc::make_mut`), so chained updates (`((s ∪ {v1}) ∪ {v2}) \ {v3}`)
//!   allocate only the nodes they logically create. This is the property the
//!   flat representation lacked: there, the first update after a snapshot
//!   paid a full O(n) copy-on-write detach.
//! * **Structural semantics are unchanged** — `Eq`, `Ord`, `Hash`, `Debug`,
//!   and iteration order are exactly those of the eager
//!   `BTreeSet` / `BTreeMap` / `Vec` representation (the property tests pin
//!   hash-for-hash agreement). Two handles that share a root short-circuit
//!   comparison through [`PSet::ptr_eq`] before falling back to the
//!   structural walk.
//!
//! Internally all three shapes reuse one weight-balanced binary tree (the
//! Adams tree of `Data.Set`/`Data.Map` fame, Δ = 3, ratio = 2) with a subtree
//! size in every node: `PSet` and `PMap` descend by key order, `PSeq`
//! descends by subtree size (an order-statistic tree), which gives O(log n)
//! `push` / `insert` / `remove` / `set` with shared spines. The empty
//! collection of each shape is a root-less handle: constructing an empty
//! value ([`PSet::new`], or evaluating the `{}` / `[]` literals) allocates
//! nothing, and all empty handles of a shape share "storage" trivially.
//!
//! The handles no longer [`Deref`](std::ops::Deref) to an eager collection —
//! there is no eager collection inside to borrow. They instead expose the
//! read surface the evaluators use directly (`contains`, `get`, `len`,
//! `iter`, indexing, …); [`PSet::to_inner`] materializes an eager collection
//! for the callers that genuinely need one.
//!
//! [`Value`]: crate::Value

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::Arc;

use crate::value::ElemId;

// ---------------------------------------------------------------------------
// The shared weight-balanced tree core.
// ---------------------------------------------------------------------------

/// Balance bound: neither child may hold more than `DELTA` times the weight
/// of its sibling. Δ = 3 with `RATIO` = 2 is the parameter pair proven sound
/// for single-element insertions and deletions (Hirai & Yamamoto; the same
/// pair GHC's `containers` settled on).
const DELTA: usize = 3;
/// Rotation selector: a single rotation suffices while the inner grandchild
/// is lighter than `RATIO` times the outer one; otherwise rotate twice.
const RATIO: usize = 2;

/// One tree node. Children are `Arc`-shared links, so a node is the unit of
/// structural sharing: path-copying clones O(log n) of these per update.
#[derive(Debug, Clone)]
struct Node<E> {
    /// Number of entries in the subtree rooted here (including this one).
    size: usize,
    entry: E,
    left: Link<E>,
    right: Link<E>,
}

type Link<E> = Option<Arc<Node<E>>>;

fn link_size<E>(link: &Link<E>) -> usize {
    link.as_ref().map_or(0, |n| n.size)
}

fn leaf<E>(entry: E) -> Link<E> {
    Some(Arc::new(Node {
        size: 1,
        entry,
        left: None,
        right: None,
    }))
}

fn update_size<E>(node: &mut Node<E>) {
    node.size = link_size(&node.left) + link_size(&node.right) + 1;
}

/// Right rotation: `(l=(ll,y,lr), x, r)` becomes `(ll, y, (lr,x,r))`.
///
/// Shared nodes on the rotation are cloned by `Arc::make_mut`; uniquely
/// owned ones are restructured in place without allocating.
fn rotate_right<E: Clone>(arc: &mut Arc<Node<E>>) {
    let n = Arc::make_mut(arc);
    let mut l_arc = n.left.take().expect("rotate_right requires a left child");
    {
        let l = Arc::make_mut(&mut l_arc);
        n.left = l.right.take();
        update_size(n);
    }
    // The left child becomes the root; the old root becomes its right child.
    std::mem::swap(arc, &mut l_arc);
    let root = Arc::make_mut(arc);
    root.right = Some(l_arc);
    update_size(root);
}

/// Left rotation: `(l, x, r=(rl,y,rr))` becomes `((l,x,rl), y, rr)`.
fn rotate_left<E: Clone>(arc: &mut Arc<Node<E>>) {
    let n = Arc::make_mut(arc);
    let mut r_arc = n.right.take().expect("rotate_left requires a right child");
    {
        let r = Arc::make_mut(&mut r_arc);
        n.right = r.left.take();
        update_size(n);
    }
    std::mem::swap(arc, &mut r_arc);
    let root = Arc::make_mut(arc);
    root.left = Some(r_arc);
    update_size(root);
}

/// Restores the weight-balance invariant at `arc` after one child gained or
/// lost a single entry (the standard Adams one-step rebalance).
fn rebalance<E: Clone>(arc: &mut Arc<Node<E>>) {
    let (ls, rs) = {
        let n = arc.as_ref();
        (link_size(&n.left), link_size(&n.right))
    };
    if ls + rs <= 1 {
        return;
    }
    if rs > DELTA * ls {
        // Right-heavy. Decide single vs double by the grandchildren.
        let double = {
            let r = arc
                .as_ref()
                .right
                .as_ref()
                .expect("right-heavy node has a right child");
            link_size(&r.left) >= RATIO * link_size(&r.right)
        };
        if double {
            let n = Arc::make_mut(arc);
            rotate_right(
                n.right
                    .as_mut()
                    .expect("right-heavy node has a right child"),
            );
        }
        rotate_left(arc);
    } else if ls > DELTA * rs {
        let double = {
            let l = arc
                .as_ref()
                .left
                .as_ref()
                .expect("left-heavy node has a left child");
            link_size(&l.right) >= RATIO * link_size(&l.left)
        };
        if double {
            let n = Arc::make_mut(arc);
            rotate_left(n.left.as_mut().expect("left-heavy node has a left child"));
        }
        rotate_right(arc);
    }
}

/// Removes and returns the smallest entry of a non-empty subtree.
fn remove_min<E: Clone>(link: &mut Link<E>) -> E {
    let arc = link.as_mut().expect("remove_min needs a non-empty subtree");
    let node = Arc::make_mut(arc);
    if node.left.is_none() {
        let entry = node.entry.clone();
        *link = node.right.take();
        entry
    } else {
        let min = remove_min(&mut node.left);
        update_size(node);
        rebalance(arc);
        min
    }
}

// --- keyed descent (PSet / PMap) -------------------------------------------

/// An entry with a lookup key — `ElemId` for sets (the entry is its own
/// key), `(ElemId, ElemId)` for maps (keyed on the first component).
trait Keyed {
    fn key(&self) -> ElemId;
}

impl Keyed for ElemId {
    fn key(&self) -> ElemId {
        *self
    }
}

impl Keyed for (ElemId, ElemId) {
    fn key(&self) -> ElemId {
        self.0
    }
}

fn get_keyed<E: Keyed>(link: &Link<E>, key: ElemId) -> Option<&E> {
    let mut cur = link;
    while let Some(node) = cur.as_deref() {
        match key.cmp(&node.entry.key()) {
            std::cmp::Ordering::Less => cur = &node.left,
            std::cmp::Ordering::Greater => cur = &node.right,
            std::cmp::Ordering::Equal => return Some(&node.entry),
        }
    }
    None
}

/// Inserts `entry` by key, returning the replaced entry if the key was
/// already bound. Callers pre-check for observable no-ops, so every call
/// that reaches a shared node genuinely needs the path copy it pays for.
fn insert_keyed<E: Keyed + Clone>(link: &mut Link<E>, entry: E) -> Option<E> {
    let Some(arc) = link.as_mut() else {
        *link = leaf(entry);
        return None;
    };
    let node = Arc::make_mut(arc);
    match entry.key().cmp(&node.entry.key()) {
        std::cmp::Ordering::Equal => Some(std::mem::replace(&mut node.entry, entry)),
        std::cmp::Ordering::Less => {
            let prior = insert_keyed(&mut node.left, entry);
            if prior.is_none() {
                update_size(node);
                rebalance(arc);
            }
            prior
        }
        std::cmp::Ordering::Greater => {
            let prior = insert_keyed(&mut node.right, entry);
            if prior.is_none() {
                update_size(node);
                rebalance(arc);
            }
            prior
        }
    }
}

/// Removes the entry with the given key, returning it if present.
fn remove_keyed<E: Keyed + Clone>(link: &mut Link<E>, key: ElemId) -> Option<E> {
    let arc = link.as_mut()?;
    let node = Arc::make_mut(arc);
    match key.cmp(&node.entry.key()) {
        std::cmp::Ordering::Less => {
            let removed = remove_keyed(&mut node.left, key);
            if removed.is_some() {
                update_size(node);
                rebalance(arc);
            }
            removed
        }
        std::cmp::Ordering::Greater => {
            let removed = remove_keyed(&mut node.right, key);
            if removed.is_some() {
                update_size(node);
                rebalance(arc);
            }
            removed
        }
        std::cmp::Ordering::Equal => {
            let entry = node.entry.clone();
            if node.left.is_none() {
                *link = node.right.take();
            } else if node.right.is_none() {
                *link = node.left.take();
            } else {
                node.entry = remove_min(&mut node.right);
                update_size(node);
                rebalance(arc);
            }
            Some(entry)
        }
    }
}

// --- positional descent (PSeq) ---------------------------------------------

fn get_at<E>(link: &Link<E>, mut index: usize) -> Option<&E> {
    let mut cur = link;
    while let Some(node) = cur.as_deref() {
        let ls = link_size(&node.left);
        if index < ls {
            cur = &node.left;
        } else if index == ls {
            return Some(&node.entry);
        } else {
            index -= ls + 1;
            cur = &node.right;
        }
    }
    None
}

/// Inserts `entry` before position `index` (`index == size` appends). The
/// caller guarantees `index <= size`.
fn insert_at<E: Clone>(link: &mut Link<E>, index: usize, entry: E) {
    let Some(arc) = link.as_mut() else {
        *link = leaf(entry);
        return;
    };
    let node = Arc::make_mut(arc);
    let ls = link_size(&node.left);
    if index <= ls {
        insert_at(&mut node.left, index, entry);
    } else {
        insert_at(&mut node.right, index - ls - 1, entry);
    }
    update_size(node);
    rebalance(arc);
}

/// Removes and returns the entry at `index`. The caller guarantees
/// `index < size`.
fn remove_at<E: Clone>(link: &mut Link<E>, index: usize) -> E {
    let arc = link.as_mut().expect("remove_at index within bounds");
    let node = Arc::make_mut(arc);
    let ls = link_size(&node.left);
    match index.cmp(&ls) {
        std::cmp::Ordering::Less => {
            let entry = remove_at(&mut node.left, index);
            update_size(node);
            rebalance(arc);
            entry
        }
        std::cmp::Ordering::Greater => {
            let entry = remove_at(&mut node.right, index - ls - 1);
            update_size(node);
            rebalance(arc);
            entry
        }
        std::cmp::Ordering::Equal => {
            let entry = node.entry.clone();
            if node.left.is_none() {
                *link = node.right.take();
            } else if node.right.is_none() {
                *link = node.left.take();
            } else {
                node.entry = remove_min(&mut node.right);
                update_size(node);
                rebalance(arc);
            }
            entry
        }
    }
}

/// Overwrites the entry at `index` — no size change, no rebalance. The
/// caller guarantees `index < size`.
fn set_at<E: Clone>(link: &mut Link<E>, index: usize, entry: E) {
    let arc = link.as_mut().expect("set_at index within bounds");
    let node = Arc::make_mut(arc);
    let ls = link_size(&node.left);
    if index < ls {
        set_at(&mut node.left, index, entry);
    } else if index == ls {
        node.entry = entry;
    } else {
        set_at(&mut node.right, index - ls - 1, entry);
    }
}

// --- bulk construction ------------------------------------------------------

/// Builds a perfectly balanced tree from entries already in tree order —
/// O(n), one node per entry, no rebalancing.
fn build_from_slice<E: Clone>(entries: &[E]) -> Link<E> {
    if entries.is_empty() {
        return None;
    }
    let mid = entries.len() / 2;
    Some(Arc::new(Node {
        size: entries.len(),
        entry: entries[mid].clone(),
        left: build_from_slice(&entries[..mid]),
        right: build_from_slice(&entries[mid + 1..]),
    }))
}

// --- iteration --------------------------------------------------------------

/// In-order iterator over a tree, double-ended via two independent descent
/// stacks; the exact remaining count (subtree sizes make it free) tells the
/// two ends when they have met.
struct TreeIter<'a, E> {
    front: Vec<&'a Node<E>>,
    back: Vec<&'a Node<E>>,
    remaining: usize,
}

impl<'a, E> TreeIter<'a, E> {
    fn new(root: &'a Link<E>) -> TreeIter<'a, E> {
        let mut iter = TreeIter {
            front: Vec::new(),
            back: Vec::new(),
            remaining: link_size(root),
        };
        iter.descend_left(root);
        iter.descend_right(root);
        iter
    }

    fn descend_left(&mut self, mut link: &'a Link<E>) {
        while let Some(node) = link.as_deref() {
            self.front.push(node);
            link = &node.left;
        }
    }

    fn descend_right(&mut self, mut link: &'a Link<E>) {
        while let Some(node) = link.as_deref() {
            self.back.push(node);
            link = &node.right;
        }
    }
}

impl<'a, E> Iterator for TreeIter<'a, E> {
    type Item = &'a E;

    fn next(&mut self) -> Option<&'a E> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let node = self.front.pop().expect("front stack tracks remaining");
        self.descend_left(&node.right);
        Some(&node.entry)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl<'a, E> DoubleEndedIterator for TreeIter<'a, E> {
    fn next_back(&mut self) -> Option<&'a E> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let node = self.back.pop().expect("back stack tracks remaining");
        self.descend_right(&node.left);
        Some(&node.entry)
    }
}

impl<E> ExactSizeIterator for TreeIter<'_, E> {}
impl<E> std::iter::FusedIterator for TreeIter<'_, E> {}

// --- sharing introspection (test hook) --------------------------------------

fn collect_node_addrs<E>(link: &Link<E>, out: &mut Vec<usize>) {
    if let Some(node) = link {
        out.push(Arc::as_ptr(node) as usize);
        collect_node_addrs(&node.left, out);
        collect_node_addrs(&node.right, out);
    }
}

/// Counts nodes of `link` that do not appear (by address) in `snapshot`.
/// The walk never prunes: an in-place (`Arc::make_mut`) update keeps a
/// node's address while rewriting its children, so a known address says
/// nothing about the subtree below it.
fn count_fresh_nodes<E>(link: &Link<E>, snapshot: &std::collections::HashSet<usize>) -> usize {
    match link {
        None => 0,
        Some(node) => {
            let fresh = usize::from(!snapshot.contains(&(Arc::as_ptr(node) as usize)));
            fresh
                + count_fresh_nodes(&node.left, snapshot)
                + count_fresh_nodes(&node.right, snapshot)
        }
    }
}

fn fresh_between<E>(new: &Link<E>, old: &Link<E>) -> usize {
    let mut addrs = Vec::new();
    collect_node_addrs(old, &mut addrs);
    count_fresh_nodes(new, &addrs.into_iter().collect())
}

fn root_ptr_eq<E>(a: &Link<E>, b: &Link<E>) -> bool {
    match (a, b) {
        (None, None) => true,
        (Some(a), Some(b)) => Arc::ptr_eq(a, b),
        _ => false,
    }
}

/// Hashes like the eager ordered collection: the standard library prefixes
/// slice/`BTreeSet`/`BTreeMap` hashes with the length (as a `usize` write)
/// and then hashes the entries in order — the property tests pin agreement
/// hash-for-hash.
fn hash_like_eager<E: std::hash::Hash, H: std::hash::Hasher>(
    len: usize,
    entries: impl Iterator<Item = E>,
    state: &mut H,
) {
    state.write_usize(len);
    for entry in entries {
        entry.hash(state);
    }
}

// ---------------------------------------------------------------------------
// The public handles.
// ---------------------------------------------------------------------------

/// Implements the representation-independent trait surface shared by the
/// three persistent handles: structural `Eq` / `Ord` with a root-pointer
/// fast path, `Default`, and the sharing/test introspection helpers.
macro_rules! persistent_handle {
    ($name:ident) => {
        impl PartialEq for $name {
            fn eq(&self, other: &Self) -> bool {
                self.ptr_eq(other) || (self.len() == other.len() && self.iter().eq(other.iter()))
            }
        }

        impl Eq for $name {}

        impl PartialOrd for $name {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }

        impl Ord for $name {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                if self.ptr_eq(other) {
                    std::cmp::Ordering::Equal
                } else {
                    self.iter().cmp(other.iter())
                }
            }
        }

        impl Default for $name {
            fn default() -> Self {
                Self::new()
            }
        }

        impl $name {
            /// Returns `true` if `self` and `other` share their root node
            /// (two empty handles trivially share).
            ///
            /// Shared roots imply structural equality (never the converse);
            /// `Eq` and `Ord` use this as a short-circuit before walking the
            /// trees. Tests use it to observe sharing: a clone shares its
            /// root with the original until one of the two is mutated.
            pub fn ptr_eq(&self, other: &Self) -> bool {
                root_ptr_eq(&self.root, &other.root)
            }

            /// The number of entries — O(1), stored in the root.
            pub fn len(&self) -> usize {
                link_size(&self.root)
            }

            /// Whether the collection is empty.
            pub fn is_empty(&self) -> bool {
                self.root.is_none()
            }

            /// Test-only introspection: the heap addresses of every tree
            /// node, pre-order. Property tests snapshot these to count how
            /// many nodes a mutation detaches.
            #[doc(hidden)]
            pub fn node_addrs(&self) -> Vec<usize> {
                let mut out = Vec::with_capacity(self.len());
                collect_node_addrs(&self.root, &mut out);
                out
            }

            /// Test-only introspection: how many of `self`'s nodes are *not*
            /// shared (by address) with `snapshot` — i.e. the nodes a
            /// mutation freshly allocated. O(log n) of these per update is
            /// the structural-sharing guarantee the property tests pin.
            #[doc(hidden)]
            pub fn fresh_nodes_since(&self, snapshot: &Self) -> usize {
                fresh_between(&self.root, &snapshot.root)
            }
        }
    };
}

/// A persistent finite set of [`ElemId`]s — the structurally-shared payload
/// of [`Value::Set`](crate::Value::Set).
///
/// A weight-balanced ordered tree with an `Arc` per node: `clone` is O(1),
/// [`PSet::insert`] / [`PSet::remove`] path-copy O(log n) nodes when the
/// tree is shared and update in place when it is not. Iteration, `Eq`,
/// `Ord`, `Hash`, and `Debug` match `BTreeSet<ElemId>` exactly.
///
/// # Example
///
/// ```
/// use semcommute_logic::pvalue::PSet;
/// use semcommute_logic::ElemId;
///
/// let s: PSet = [ElemId(1), ElemId(2)].into_iter().collect();
/// let mut t = s.clone(); // O(1): shares the whole tree with `s`
/// assert!(t.ptr_eq(&s));
///
/// t.insert(ElemId(3)); // path-copy: `s` is unaffected
/// assert!(!t.ptr_eq(&s));
/// assert_eq!(s.len(), 2);
/// assert_eq!(t.len(), 3);
/// assert!(t.contains(&ElemId(1)));
/// ```
#[derive(Clone)]
pub struct PSet {
    root: Link<ElemId>,
}

persistent_handle!(PSet);

impl PSet {
    /// The empty set: a root-less handle, no allocation ever.
    pub fn new() -> PSet {
        PSet { root: None }
    }

    /// Whether `elem` is a member — O(log n).
    pub fn contains(&self, elem: &ElemId) -> bool {
        get_keyed(&self.root, *elem).is_some()
    }

    /// The members in ascending order.
    pub fn iter(&self) -> SetIter<'_> {
        SetIter(TreeIter::new(&self.root))
    }

    /// Inserts `elem`, path-copying the descent if the tree is shared.
    /// Returns `true` if the element was not already present. Inserting a
    /// present element is observably a no-op and never copies sharing away.
    pub fn insert(&mut self, elem: ElemId) -> bool {
        if self.contains(&elem) {
            return false;
        }
        insert_keyed(&mut self.root, elem);
        true
    }

    /// Removes `elem`, path-copying the descent if the tree is shared.
    /// Returns `true` if the element was present. Removing an absent element
    /// is observably a no-op and never copies sharing away.
    pub fn remove(&mut self, elem: &ElemId) -> bool {
        if !self.contains(elem) {
            return false;
        }
        remove_keyed(&mut self.root, *elem);
        true
    }

    /// Returns the image of this set under an element relabeling: every
    /// member `e` is replaced by `f(e)`.
    ///
    /// When `f` is injective on the members (the orbit-reduction use case:
    /// `f` is a permutation of a block of anonymous elements) the image has
    /// the same cardinality. When `f` fixes every member, the original
    /// handle is returned unchanged (O(1), shares the whole tree).
    pub fn map_elems(&self, f: impl Fn(ElemId) -> ElemId) -> PSet {
        if self.iter().all(|&e| f(e) == e) {
            return self.clone();
        }
        self.iter().map(|&e| f(e)).collect()
    }

    /// Clones out an eager `BTreeSet` — the explicit deep copy `clone` no
    /// longer performs; callers that need an independent eager collection
    /// (e.g. abstract-state reconstruction) pay for it here.
    pub fn to_inner(&self) -> BTreeSet<ElemId> {
        self.iter().copied().collect()
    }
}

/// Borrowing iterator over a [`PSet`], ascending.
pub struct SetIter<'a>(TreeIter<'a, ElemId>);

impl<'a> Iterator for SetIter<'a> {
    type Item = &'a ElemId;

    fn next(&mut self) -> Option<&'a ElemId> {
        self.0.next()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.0.size_hint()
    }
}

impl DoubleEndedIterator for SetIter<'_> {
    fn next_back(&mut self) -> Option<Self::Item> {
        self.0.next_back()
    }
}

impl ExactSizeIterator for SetIter<'_> {}
impl std::iter::FusedIterator for SetIter<'_> {}

impl<'a> IntoIterator for &'a PSet {
    type Item = &'a ElemId;
    type IntoIter = SetIter<'a>;

    fn into_iter(self) -> SetIter<'a> {
        self.iter()
    }
}

impl fmt::Debug for PSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl std::hash::Hash for PSet {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        hash_like_eager(self.len(), self.iter(), state);
    }
}

impl From<BTreeSet<ElemId>> for PSet {
    fn from(inner: BTreeSet<ElemId>) -> PSet {
        let ordered: Vec<ElemId> = inner.into_iter().collect();
        PSet {
            root: build_from_slice(&ordered),
        }
    }
}

impl From<PSet> for BTreeSet<ElemId> {
    fn from(handle: PSet) -> BTreeSet<ElemId> {
        handle.to_inner()
    }
}

impl FromIterator<ElemId> for PSet {
    fn from_iter<I: IntoIterator<Item = ElemId>>(items: I) -> PSet {
        let inner: BTreeSet<ElemId> = items.into_iter().collect();
        PSet::from(inner)
    }
}

impl PartialEq<BTreeSet<ElemId>> for PSet {
    fn eq(&self, other: &BTreeSet<ElemId>) -> bool {
        self.len() == other.len() && self.iter().eq(other.iter())
    }
}

/// A persistent finite partial map from [`ElemId`] to [`ElemId`] — the
/// structurally-shared payload of [`Value::Map`](crate::Value::Map).
///
/// A weight-balanced tree ordered by key with an `Arc` per node: `clone` is
/// O(1), [`PMap::insert`] / [`PMap::remove`] path-copy O(log n) nodes when
/// the tree is shared. Iteration, `Eq`, `Ord`, `Hash`, and `Debug` match
/// `BTreeMap<ElemId, ElemId>` exactly.
#[derive(Clone)]
pub struct PMap {
    root: Link<(ElemId, ElemId)>,
}

persistent_handle!(PMap);

impl PMap {
    /// The empty map: a root-less handle, no allocation ever.
    pub fn new() -> PMap {
        PMap { root: None }
    }

    /// The value bound to `key`, if any — O(log n).
    pub fn get(&self, key: &ElemId) -> Option<&ElemId> {
        get_keyed(&self.root, *key).map(|(_, v)| v)
    }

    /// Whether `key` is bound — O(log n).
    pub fn contains_key(&self, key: &ElemId) -> bool {
        get_keyed(&self.root, *key).is_some()
    }

    /// The bindings in ascending key order.
    pub fn iter(&self) -> MapIter<'_> {
        MapIter(TreeIter::new(&self.root))
    }

    /// Binds `key` to `value`, path-copying the descent if the tree is
    /// shared. Returns the previous binding of `key`, if any. Rebinding a
    /// key to its current value is observably a no-op and never copies
    /// sharing away.
    pub fn insert(&mut self, key: ElemId, value: ElemId) -> Option<ElemId> {
        if self.get(&key) == Some(&value) {
            return Some(value);
        }
        insert_keyed(&mut self.root, (key, value)).map(|(_, v)| v)
    }

    /// Removes the binding for `key`, path-copying the descent if the tree
    /// is shared. Returns the removed value, if any. Removing an unbound key
    /// is observably a no-op and never copies sharing away.
    pub fn remove(&mut self, key: &ElemId) -> Option<ElemId> {
        if !self.contains_key(key) {
            return None;
        }
        remove_keyed(&mut self.root, *key).map(|(_, v)| v)
    }

    /// Returns the image of this map under an element relabeling: every
    /// binding `k ↦ v` is replaced by `f(k) ↦ f(v)`.
    ///
    /// Keys and values relabel *together* — a permutation of anonymous
    /// elements must act on the whole model uniformly for evaluation to be
    /// invariant (`get(π(k))` on the image equals `π(get(k))` on the
    /// original). When `f` fixes every key and value, the original handle is
    /// returned unchanged (O(1), shares the whole tree).
    pub fn map_elems(&self, f: impl Fn(ElemId) -> ElemId) -> PMap {
        if self.iter().all(|(&k, &v)| f(k) == k && f(v) == v) {
            return self.clone();
        }
        self.iter().map(|(&k, &v)| (f(k), f(v))).collect()
    }

    /// Clones out an eager `BTreeMap` — the explicit deep copy `clone` no
    /// longer performs.
    pub fn to_inner(&self) -> BTreeMap<ElemId, ElemId> {
        self.iter().map(|(&k, &v)| (k, v)).collect()
    }
}

/// Borrowing iterator over a [`PMap`], ascending by key.
pub struct MapIter<'a>(TreeIter<'a, (ElemId, ElemId)>);

impl<'a> Iterator for MapIter<'a> {
    type Item = (&'a ElemId, &'a ElemId);

    fn next(&mut self) -> Option<Self::Item> {
        self.0.next().map(|(k, v)| (k, v))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.0.size_hint()
    }
}

impl DoubleEndedIterator for MapIter<'_> {
    fn next_back(&mut self) -> Option<Self::Item> {
        self.0.next_back().map(|(k, v)| (k, v))
    }
}

impl ExactSizeIterator for MapIter<'_> {}
impl std::iter::FusedIterator for MapIter<'_> {}

impl<'a> IntoIterator for &'a PMap {
    type Item = (&'a ElemId, &'a ElemId);
    type IntoIter = MapIter<'a>;

    fn into_iter(self) -> MapIter<'a> {
        self.iter()
    }
}

impl fmt::Debug for PMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

impl std::hash::Hash for PMap {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        hash_like_eager(self.len(), self.iter(), state);
    }
}

impl From<BTreeMap<ElemId, ElemId>> for PMap {
    fn from(inner: BTreeMap<ElemId, ElemId>) -> PMap {
        let ordered: Vec<(ElemId, ElemId)> = inner.into_iter().collect();
        PMap {
            root: build_from_slice(&ordered),
        }
    }
}

impl From<PMap> for BTreeMap<ElemId, ElemId> {
    fn from(handle: PMap) -> BTreeMap<ElemId, ElemId> {
        handle.to_inner()
    }
}

impl FromIterator<(ElemId, ElemId)> for PMap {
    fn from_iter<I: IntoIterator<Item = (ElemId, ElemId)>>(items: I) -> PMap {
        let inner: BTreeMap<ElemId, ElemId> = items.into_iter().collect();
        PMap::from(inner)
    }
}

impl PartialEq<BTreeMap<ElemId, ElemId>> for PMap {
    fn eq(&self, other: &BTreeMap<ElemId, ElemId>) -> bool {
        self.len() == other.len() && self.iter().eq(other.iter())
    }
}

/// A persistent finite sequence of [`ElemId`]s — the structurally-shared
/// payload of [`Value::Seq`](crate::Value::Seq).
///
/// An order-statistic weight-balanced tree (descent by subtree size) with an
/// `Arc` per node: `clone` is O(1) and `push` / `insert` / `remove` / `set`
/// are O(log n) with shared spines — where the flat `Vec` representation
/// paid an O(n) copy-on-write detach for the first update after a snapshot,
/// and an O(n) shift for every mid-sequence insert or remove besides.
/// Iteration, indexing, `Eq`, `Ord`, `Hash`, and `Debug` match
/// `Vec<ElemId>` exactly.
#[derive(Clone)]
pub struct PSeq {
    root: Link<ElemId>,
}

persistent_handle!(PSeq);

impl PSeq {
    /// The empty sequence: a root-less handle, no allocation ever.
    pub fn new() -> PSeq {
        PSeq { root: None }
    }

    /// The element at `index`, if in range — O(log n).
    pub fn get(&self, index: usize) -> Option<&ElemId> {
        get_at(&self.root, index)
    }

    /// Whether `elem` occurs in the sequence — O(n), like `Vec::contains`.
    pub fn contains(&self, elem: &ElemId) -> bool {
        self.iter().any(|e| e == elem)
    }

    /// The elements in positional order.
    pub fn iter(&self) -> SeqIter<'_> {
        SeqIter(TreeIter::new(&self.root))
    }

    /// Appends `elem` — O(log n), path-copying the right spine if shared.
    pub fn push(&mut self, elem: ElemId) {
        let len = self.len();
        insert_at(&mut self.root, len, elem);
    }

    /// Inserts `elem` at position `index` (shifting later elements) —
    /// O(log n), no element shifting.
    ///
    /// # Panics
    ///
    /// Panics if `index > len` — callers clamp, matching the evaluator's
    /// totalized `insert_at` semantics.
    pub fn insert(&mut self, index: usize, elem: ElemId) {
        assert!(
            index <= self.len(),
            "insertion index (is {index}) should be <= len (is {})",
            self.len()
        );
        insert_at(&mut self.root, index, elem);
    }

    /// Removes and returns the element at `index` (shifting later elements)
    /// — O(log n), no element shifting.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len` — callers bounds-check, matching the
    /// evaluator's totalized `remove_at` semantics (out-of-range removal is
    /// a no-op there).
    pub fn remove(&mut self, index: usize) -> ElemId {
        assert!(
            index < self.len(),
            "removal index (is {index}) should be < len (is {})",
            self.len()
        );
        remove_at(&mut self.root, index)
    }

    /// Overwrites the element at `index` — O(log n). Writing the value
    /// already there is observably a no-op and never copies sharing away.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len` — callers bounds-check, matching the
    /// evaluator's totalized `set_at` semantics.
    pub fn set(&mut self, index: usize, elem: ElemId) {
        match self.get(index) {
            Some(current) if *current == elem => {}
            Some(_) => set_at(&mut self.root, index, elem),
            None => panic!(
                "write index (is {index}) should be < len (is {})",
                self.len()
            ),
        }
    }

    /// Returns the image of this sequence under an element relabeling: the
    /// element at each position is replaced by its `f`-image (positions are
    /// untouched — a relabeling permutes identities, not indices).
    ///
    /// When `f` fixes every element, the original handle is returned
    /// unchanged (O(1), shares the whole tree).
    pub fn map_elems(&self, f: impl Fn(ElemId) -> ElemId) -> PSeq {
        if self.iter().all(|&e| f(e) == e) {
            return self.clone();
        }
        self.iter().map(|&e| f(e)).collect()
    }

    /// Clones out an eager `Vec` — the explicit deep copy `clone` no longer
    /// performs.
    pub fn to_inner(&self) -> Vec<ElemId> {
        self.iter().copied().collect()
    }
}

/// Borrowing iterator over a [`PSeq`], in positional order.
pub struct SeqIter<'a>(TreeIter<'a, ElemId>);

impl<'a> Iterator for SeqIter<'a> {
    type Item = &'a ElemId;

    fn next(&mut self) -> Option<&'a ElemId> {
        self.0.next()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.0.size_hint()
    }
}

impl DoubleEndedIterator for SeqIter<'_> {
    fn next_back(&mut self) -> Option<Self::Item> {
        self.0.next_back()
    }
}

impl ExactSizeIterator for SeqIter<'_> {}
impl std::iter::FusedIterator for SeqIter<'_> {}

impl<'a> IntoIterator for &'a PSeq {
    type Item = &'a ElemId;
    type IntoIter = SeqIter<'a>;

    fn into_iter(self) -> SeqIter<'a> {
        self.iter()
    }
}

impl std::ops::Index<usize> for PSeq {
    type Output = ElemId;

    fn index(&self, index: usize) -> &ElemId {
        self.get(index).unwrap_or_else(|| {
            panic!(
                "index out of bounds: the len is {} but the index is {index}",
                self.len()
            )
        })
    }
}

impl fmt::Debug for PSeq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

impl std::hash::Hash for PSeq {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        hash_like_eager(self.len(), self.iter(), state);
    }
}

impl From<Vec<ElemId>> for PSeq {
    fn from(inner: Vec<ElemId>) -> PSeq {
        PSeq {
            root: build_from_slice(&inner),
        }
    }
}

impl From<PSeq> for Vec<ElemId> {
    fn from(handle: PSeq) -> Vec<ElemId> {
        handle.to_inner()
    }
}

impl FromIterator<ElemId> for PSeq {
    fn from_iter<I: IntoIterator<Item = ElemId>>(items: I) -> PSeq {
        let inner: Vec<ElemId> = items.into_iter().collect();
        PSeq::from(inner)
    }
}

impl PartialEq<Vec<ElemId>> for PSeq {
    fn eq(&self, other: &Vec<ElemId>) -> bool {
        self.len() == other.len() && self.iter().eq(other.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Recomputes sizes and checks the weight-balance invariant bottom-up.
    fn check_tree<E: Clone>(link: &Link<E>) -> usize {
        match link.as_deref() {
            None => 0,
            Some(node) => {
                let ls = check_tree(&node.left);
                let rs = check_tree(&node.right);
                assert_eq!(node.size, ls + rs + 1, "stored size matches subtree");
                if ls + rs > 1 {
                    assert!(
                        ls <= DELTA * rs && rs <= DELTA * ls,
                        "weight balance violated: left {ls}, right {rs}"
                    );
                }
                node.size
            }
        }
    }

    #[test]
    fn empty_handles_share_the_singleton() {
        assert!(PSet::new().ptr_eq(&PSet::new()));
        assert!(PMap::new().ptr_eq(&PMap::new()));
        assert!(PSeq::new().ptr_eq(&PSeq::new()));
        assert!(PSet::new().is_empty());
        assert!(PMap::new().is_empty());
        assert!(PSeq::new().is_empty());
    }

    #[test]
    fn clone_shares_until_mutation() {
        let a: PSet = [ElemId(1)].into_iter().collect();
        let mut b = a.clone();
        assert!(a.ptr_eq(&b));
        b.insert(ElemId(2));
        assert!(!a.ptr_eq(&b));
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn unique_handles_allocate_only_the_new_node() {
        // With a uniquely-owned tree, `Arc::make_mut` rewrites the descent
        // path in place: a push allocates exactly the one leaf it creates
        // (rotations reuse existing allocations), and an overwrite allocates
        // nothing at all.
        let mut s: PSeq = (0..64).map(ElemId).collect();
        let snapshot_addrs: std::collections::HashSet<usize> = s.node_addrs().into_iter().collect();
        s.push(ElemId(100));
        assert_eq!(count_fresh_nodes(&s.root, &snapshot_addrs), 1);
        let before_set: std::collections::HashSet<usize> = s.node_addrs().into_iter().collect();
        s.set(0, ElemId(99));
        assert_eq!(count_fresh_nodes(&s.root, &before_set), 0);
    }

    #[test]
    fn shared_handles_detach_logarithmically() {
        let n = 1024usize;
        let base: PSet = (0..n as u32).map(ElemId).collect();
        let snapshot = base.clone();
        let mut mutated = base.clone();
        mutated.insert(ElemId(5000));
        // Path copy: O(log n) fresh nodes, the rest shared with the snapshot.
        let fresh = mutated.fresh_nodes_since(&snapshot);
        assert!(fresh >= 1, "an insert allocates at least the new leaf");
        assert!(
            fresh <= 40,
            "insert into a shared {n}-element tree detached {fresh} nodes; expected O(log n)"
        );
        assert_eq!(snapshot.len(), n, "the snapshot is untouched");
    }

    #[test]
    fn no_op_mutations_preserve_sharing() {
        let a: PSet = [ElemId(1)].into_iter().collect();
        let mut b = a.clone();
        b.remove(&ElemId(7)); // absent: no copy
        assert!(a.ptr_eq(&b));
        b.insert(ElemId(1)); // present: no copy
        assert!(a.ptr_eq(&b));

        let m: PMap = [(ElemId(1), ElemId(2))].into_iter().collect();
        let mut n = m.clone();
        assert_eq!(n.insert(ElemId(1), ElemId(2)), Some(ElemId(2)));
        n.remove(&ElemId(9));
        assert!(m.ptr_eq(&n));

        let q: PSeq = [ElemId(5)].into_iter().collect();
        let mut r = q.clone();
        r.set(0, ElemId(5));
        assert!(q.ptr_eq(&r));
    }

    #[test]
    fn structural_comparison_ignores_sharing() {
        let a: PSet = [ElemId(1), ElemId(2)].into_iter().collect();
        let b: PSet = [ElemId(2), ElemId(1)].into_iter().collect();
        assert_eq!(a, b);
        assert!(!a.ptr_eq(&b));
        let c: PSet = [ElemId(3)].into_iter().collect();
        assert_eq!(a.cmp(&c), a.to_inner().cmp(&c.to_inner()));
    }

    #[test]
    fn balanced_under_mixed_updates() {
        // A deterministic adversarial-ish schedule: ascending inserts (the
        // classic unbalanced-BST killer), interleaved removes, then
        // positional churn on a sequence.
        let mut s = PSet::new();
        for i in 0..500u32 {
            assert!(s.insert(ElemId(i)));
            check_tree(&s.root);
        }
        for i in (0..500u32).step_by(3) {
            assert!(s.remove(&ElemId(i)));
        }
        check_tree(&s.root);
        assert_eq!(s.len(), 500 - 167);

        let mut q = PSeq::new();
        for i in 0..300u32 {
            q.insert(0, ElemId(i)); // always at the front: left-heavy abuse
            check_tree(&q.root);
        }
        for _ in 0..150 {
            q.remove(q.len() / 2);
        }
        check_tree(&q.root);
        assert_eq!(q.len(), 150);
    }

    #[test]
    fn sequences_preserve_positional_order() {
        let mut q = PSeq::new();
        q.push(ElemId(1));
        q.push(ElemId(3));
        q.insert(1, ElemId(2));
        q.insert(0, ElemId(0));
        assert_eq!(
            q.to_inner(),
            vec![ElemId(0), ElemId(1), ElemId(2), ElemId(3)]
        );
        assert_eq!(q[2], ElemId(2));
        assert_eq!(q.remove(1), ElemId(1));
        assert_eq!(q.to_inner(), vec![ElemId(0), ElemId(2), ElemId(3)]);
        q.set(1, ElemId(9));
        assert_eq!(q.to_inner(), vec![ElemId(0), ElemId(9), ElemId(3)]);
        assert_eq!(
            q.iter().rev().copied().collect::<Vec<_>>(),
            vec![ElemId(3), ElemId(9), ElemId(0)]
        );
        assert_eq!(q.iter().position(|&e| e == ElemId(9)), Some(1));
        assert_eq!(q.iter().rposition(|&e| e == ElemId(3)), Some(2));
    }

    #[test]
    fn map_elems_relabels_and_preserves_sharing_on_fixpoints() {
        let swap = |e: ElemId| match e {
            ElemId(1) => ElemId(2),
            ElemId(2) => ElemId(1),
            other => other,
        };
        let s: PSet = [ElemId(1), ElemId(3)].into_iter().collect();
        assert_eq!(
            s.map_elems(swap),
            [ElemId(2), ElemId(3)].into_iter().collect::<PSet>()
        );
        let fixed: PSet = [ElemId(3), ElemId(4)].into_iter().collect();
        assert!(fixed.map_elems(swap).ptr_eq(&fixed));

        // Maps relabel keys and values together.
        let m: PMap = [(ElemId(1), ElemId(2)), (ElemId(3), ElemId(1))]
            .into_iter()
            .collect();
        let expected: PMap = [(ElemId(2), ElemId(1)), (ElemId(3), ElemId(2))]
            .into_iter()
            .collect();
        assert_eq!(m.map_elems(swap), expected);

        // Sequences relabel elements, never positions.
        let q: PSeq = [ElemId(2), ElemId(1), ElemId(2)].into_iter().collect();
        let expected: PSeq = [ElemId(1), ElemId(2), ElemId(1)].into_iter().collect();
        assert_eq!(q.map_elems(swap), expected);
        let fixed: PSeq = [ElemId(5)].into_iter().collect();
        assert!(fixed.map_elems(swap).ptr_eq(&fixed));
    }

    #[test]
    fn conversion_round_trips() {
        let eager: BTreeSet<ElemId> = [ElemId(4), ElemId(8)].into_iter().collect();
        let p = PSet::from(eager.clone());
        assert_eq!(p.to_inner(), eager);
        assert_eq!(BTreeSet::from(p), eager);

        let eager: BTreeMap<ElemId, ElemId> = [(ElemId(1), ElemId(2))].into_iter().collect();
        let p = PMap::from(eager.clone());
        assert_eq!(p.to_inner(), eager);

        let eager = vec![ElemId(3), ElemId(1), ElemId(3)];
        let p = PSeq::from(eager.clone());
        assert_eq!(p.to_inner(), eager);
    }

    #[test]
    fn debug_matches_the_eager_representation() {
        let s: PSet = [ElemId(2), ElemId(1)].into_iter().collect();
        assert_eq!(format!("{s:?}"), format!("{:?}", s.to_inner()));
        let m: PMap = [(ElemId(1), ElemId(9))].into_iter().collect();
        assert_eq!(format!("{m:?}"), format!("{:?}", m.to_inner()));
        let q: PSeq = [ElemId(7), ElemId(7)].into_iter().collect();
        assert_eq!(format!("{q:?}"), format!("{:?}", q.to_inner()));
    }
}
