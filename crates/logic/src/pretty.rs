//! Pretty-printing of terms in a Jahob-like concrete syntax.
//!
//! The printer is used for table output (the commutativity-condition catalogs
//! of Tables 5.1–5.7), counterexample reports, and `Debug`-friendly logs. The
//! syntax follows the paper: `v1 ~= v2 | v1 : s1`, `contents Un {v}`,
//! `contents - {v}`, etc.

use std::fmt;

use crate::term::Term;

/// A displayable wrapper that renders a term in Jahob-like syntax.
pub struct JahobSyntax<'a>(pub &'a Term);

impl fmt::Display for JahobSyntax<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_term(f, self.0, 0)
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_term(f, self, 0)
    }
}

/// Precedence levels, loosest binding first.
const PREC_IFF: u8 = 1;
const PREC_IMPLIES: u8 = 2;
const PREC_OR: u8 = 3;
const PREC_AND: u8 = 4;
const PREC_NOT: u8 = 5;
const PREC_CMP: u8 = 6;
const PREC_ADD: u8 = 7;
const PREC_ATOM: u8 = 10;

fn write_paren(
    f: &mut fmt::Formatter<'_>,
    outer: u8,
    inner: u8,
    body: impl FnOnce(&mut fmt::Formatter<'_>) -> fmt::Result,
) -> fmt::Result {
    if inner < outer {
        write!(f, "(")?;
        body(f)?;
        write!(f, ")")
    } else {
        body(f)
    }
}

fn write_term(f: &mut fmt::Formatter<'_>, t: &Term, prec: u8) -> fmt::Result {
    use Term::*;
    match t {
        Var(v) => write!(f, "{}", v.name),
        BoolLit(b) => write!(f, "{}", if *b { "True" } else { "False" }),
        IntLit(i) => write!(f, "{i}"),
        Null => write!(f, "null"),

        Not(a) => write_paren(f, prec, PREC_NOT, |f| {
            write!(f, "~")?;
            write_term(f, a, PREC_NOT + 1)
        }),
        And(cs) => {
            if cs.is_empty() {
                return write!(f, "True");
            }
            write_paren(f, prec, PREC_AND, |f| {
                for (i, c) in cs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " & ")?;
                    }
                    write_term(f, c, PREC_AND + 1)?;
                }
                Ok(())
            })
        }
        Or(cs) => {
            if cs.is_empty() {
                return write!(f, "False");
            }
            write_paren(f, prec, PREC_OR, |f| {
                for (i, c) in cs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " | ")?;
                    }
                    write_term(f, c, PREC_OR + 1)?;
                }
                Ok(())
            })
        }
        Implies(a, b) => write_paren(f, prec, PREC_IMPLIES, |f| {
            write_term(f, a, PREC_IMPLIES + 1)?;
            write!(f, " --> ")?;
            write_term(f, b, PREC_IMPLIES)
        }),
        Iff(a, b) => write_paren(f, prec, PREC_IFF, |f| {
            write_term(f, a, PREC_IFF + 1)?;
            write!(f, " <-> ")?;
            write_term(f, b, PREC_IFF)
        }),
        Ite(c, x, y) => {
            write!(f, "(if ")?;
            write_term(f, c, 0)?;
            write!(f, " then ")?;
            write_term(f, x, 0)?;
            write!(f, " else ")?;
            write_term(f, y, 0)?;
            write!(f, ")")
        }
        Eq(a, b) => {
            // Special-case `~ (a = b)` is handled by Not; here print `a = b`.
            write_paren(f, prec, PREC_CMP, |f| {
                write_term(f, a, PREC_CMP + 1)?;
                write!(f, " = ")?;
                write_term(f, b, PREC_CMP + 1)
            })
        }

        Add(a, b) => write_paren(f, prec, PREC_ADD, |f| {
            write_term(f, a, PREC_ADD)?;
            write!(f, " + ")?;
            write_term(f, b, PREC_ADD + 1)
        }),
        Sub(a, b) => write_paren(f, prec, PREC_ADD, |f| {
            write_term(f, a, PREC_ADD)?;
            write!(f, " - ")?;
            write_term(f, b, PREC_ADD + 1)
        }),
        Neg(a) => write_paren(f, prec, PREC_ADD, |f| {
            write!(f, "-")?;
            write_term(f, a, PREC_ATOM)
        }),
        Lt(a, b) => write_paren(f, prec, PREC_CMP, |f| {
            write_term(f, a, PREC_CMP + 1)?;
            write!(f, " < ")?;
            write_term(f, b, PREC_CMP + 1)
        }),
        Le(a, b) => write_paren(f, prec, PREC_CMP, |f| {
            write_term(f, a, PREC_CMP + 1)?;
            write!(f, " <= ")?;
            write_term(f, b, PREC_CMP + 1)
        }),

        EmptySet => write!(f, "{{}}"),
        SetAdd(s, v) => write_paren(f, prec, PREC_ADD, |f| {
            write_term(f, s, PREC_ADD)?;
            write!(f, " Un {{")?;
            write_term(f, v, 0)?;
            write!(f, "}}")
        }),
        SetRemove(s, v) => write_paren(f, prec, PREC_ADD, |f| {
            write_term(f, s, PREC_ADD)?;
            write!(f, " - {{")?;
            write_term(f, v, 0)?;
            write!(f, "}}")
        }),
        Member(v, s) => write_paren(f, prec, PREC_CMP, |f| {
            write_term(f, v, PREC_CMP + 1)?;
            write!(f, " : ")?;
            write_term(f, s, PREC_CMP + 1)
        }),
        Card(s) => {
            write!(f, "card(")?;
            write_term(f, s, 0)?;
            write!(f, ")")
        }

        EmptyMap => write!(f, "{{||}}"),
        MapPut(m, k, v) => {
            write_term(f, m, PREC_ATOM)?;
            write!(f, "[")?;
            write_term(f, k, 0)?;
            write!(f, " := ")?;
            write_term(f, v, 0)?;
            write!(f, "]")
        }
        MapRemove(m, k) => {
            write_term(f, m, PREC_ATOM)?;
            write!(f, " -- ")?;
            write_term(f, k, PREC_ATOM)
        }
        MapGet(m, k) => {
            write_term(f, m, PREC_ATOM)?;
            write!(f, ".get(")?;
            write_term(f, k, 0)?;
            write!(f, ")")
        }
        MapHasKey(m, k) => {
            write_term(f, m, PREC_ATOM)?;
            write!(f, ".containsKey(")?;
            write_term(f, k, 0)?;
            write!(f, ")")
        }
        MapSize(m) => {
            write!(f, "size(")?;
            write_term(f, m, 0)?;
            write!(f, ")")
        }

        EmptySeq => write!(f, "[]"),
        SeqInsertAt(s, i, v) => {
            write_term(f, s, PREC_ATOM)?;
            write!(f, ".insertAt(")?;
            write_term(f, i, 0)?;
            write!(f, ", ")?;
            write_term(f, v, 0)?;
            write!(f, ")")
        }
        SeqRemoveAt(s, i) => {
            write_term(f, s, PREC_ATOM)?;
            write!(f, ".removeAt(")?;
            write_term(f, i, 0)?;
            write!(f, ")")
        }
        SeqSetAt(s, i, v) => {
            write_term(f, s, PREC_ATOM)?;
            write!(f, ".setAt(")?;
            write_term(f, i, 0)?;
            write!(f, ", ")?;
            write_term(f, v, 0)?;
            write!(f, ")")
        }
        SeqAt(s, i) => {
            write_term(f, s, PREC_ATOM)?;
            write!(f, "[")?;
            write_term(f, i, 0)?;
            write!(f, "]")
        }
        SeqLen(s) => {
            write!(f, "len(")?;
            write_term(f, s, 0)?;
            write!(f, ")")
        }
        SeqIndexOf(s, v) => {
            write_term(f, s, PREC_ATOM)?;
            write!(f, ".indexOf(")?;
            write_term(f, v, 0)?;
            write!(f, ")")
        }
        SeqLastIndexOf(s, v) => {
            write_term(f, s, PREC_ATOM)?;
            write!(f, ".lastIndexOf(")?;
            write_term(f, v, 0)?;
            write!(f, ")")
        }
        SeqContains(s, v) => {
            write_term(f, s, PREC_ATOM)?;
            write!(f, ".contains(")?;
            write_term(f, v, 0)?;
            write!(f, ")")
        }

        ForallInt { var, lo, hi, body } => write_paren(f, prec, PREC_IFF, |f| {
            write!(f, "ALL {var} : [")?;
            write_term(f, lo, 0)?;
            write!(f, ", ")?;
            write_term(f, hi, 0)?;
            write!(f, "). ")?;
            write_term(f, body, PREC_IFF)
        }),
        ExistsInt { var, lo, hi, body } => write_paren(f, prec, PREC_IFF, |f| {
            write!(f, "EX {var} : [")?;
            write_term(f, lo, 0)?;
            write!(f, ", ")?;
            write_term(f, hi, 0)?;
            write!(f, "). ")?;
            write_term(f, body, PREC_IFF)
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::*;

    #[test]
    fn between_condition_prints_like_the_paper() {
        // v1 ~= v2 | r1 = True
        let t = or2(
            neq(var_elem("v1"), var_elem("v2")),
            eq(var_bool("r1"), tru()),
        );
        assert_eq!(t.to_string(), "~v1 = v2 | r1 = True");
    }

    #[test]
    fn set_algebra_prints_jahob_style() {
        let t = eq(
            var_set("contents"),
            set_add(var_set("old_contents"), var_elem("v")),
        );
        assert_eq!(t.to_string(), "contents = old_contents Un {v}");
        let r = set_remove(var_set("s"), var_elem("v"));
        assert_eq!(r.to_string(), "s - {v}");
    }

    #[test]
    fn precedence_inserts_parentheses_where_needed() {
        let t = and2(or2(var_bool("a"), var_bool("b")), var_bool("c"));
        assert_eq!(t.to_string(), "(a | b) & c");
        let t2 = or2(and2(var_bool("a"), var_bool("b")), var_bool("c"));
        assert_eq!(t2.to_string(), "a & b | c");
    }

    #[test]
    fn container_queries_print_readably() {
        assert_eq!(map_get(var_map("m"), var_elem("k")).to_string(), "m.get(k)");
        assert_eq!(
            seq_index_of(var_seq("q"), var_elem("v")).to_string(),
            "q.indexOf(v)"
        );
        assert_eq!(seq_at(var_seq("q"), var_int("i")).to_string(), "q[i]");
        assert_eq!(card(var_set("s")).to_string(), "card(s)");
    }

    #[test]
    fn quantifiers_print_with_ranges() {
        let t = exists_int(
            "i",
            int(0),
            seq_len(var_seq("q")),
            eq(seq_at(var_seq("q"), var_int("i")), var_elem("v")),
        );
        assert_eq!(t.to_string(), "EX i : [0, len(q)). q[i] = v");
    }

    #[test]
    fn jahob_syntax_wrapper_matches_display() {
        let t = member(var_elem("v"), var_set("s"));
        assert_eq!(JahobSyntax(&t).to_string(), t.to_string());
    }
}
