//! Structural simplification of terms.
//!
//! The simplifier performs sound, semantics-preserving rewriting: constant
//! folding, boolean identities, flattening of nested conjunctions and
//! disjunctions, syntactic-equality reasoning, and a few container-algebra
//! identities. The prover uses it both as a fast first pass (many generated
//! obligations become literally `true`) and to shrink obligations before
//! finite-model search.
//!
//! Soundness is checked by property tests comparing evaluation of the original
//! and the simplified term under random models.

use crate::arena::with_arena;
use crate::term::Term;

/// Simplifies `term` bottom-up until a fixed point is reached.
///
/// The rewriting runs on the calling thread's hash-consed term arena (see
/// [`crate::arena`]): the term is interned, simplified with per-node
/// memoization — so a sub-DAG shared by many call sites is rewritten once,
/// and repeated calls on already-seen terms are cache hits — and the result
/// is reconstructed as a boxed tree. The rule set (constant folding, boolean
/// identities, flattening, syntactic-equality reasoning, container
/// identities) lives in [`crate::arena::TermArena::simplify_id`].
pub fn simplify(term: &Term) -> Term {
    with_arena(|arena| {
        let id = arena.intern(term);
        let simplified = arena.simplify_id(id);
        arena.to_term(simplified)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::*;

    #[test]
    fn boolean_identities() {
        assert!(simplify(&and2(tru(), tru())).is_true());
        assert!(simplify(&and2(tru(), fls())).is_false());
        assert!(simplify(&or2(fls(), fls())).is_false());
        assert!(simplify(&not(not(tru()))).is_true());
        assert!(simplify(&implies(fls(), var_bool("p"))).is_true());
        assert_eq!(simplify(&implies(tru(), var_bool("p"))), var_bool("p"));
        assert!(simplify(&iff(var_bool("p"), var_bool("p"))).is_true());
        assert!(simplify(&and2(var_bool("p"), not(var_bool("p")))).is_false());
        assert!(simplify(&or2(var_bool("p"), not(var_bool("p")))).is_true());
    }

    #[test]
    fn nested_and_or_flatten() {
        let t = and2(
            and2(var_bool("a"), var_bool("b")),
            and2(tru(), var_bool("c")),
        );
        match simplify(&t) {
            Term::And(cs) => assert_eq!(cs.len(), 3),
            other => panic!("expected flattened conjunction, got {other:?}"),
        }
    }

    #[test]
    fn equality_and_arithmetic_folding() {
        assert!(simplify(&eq(var_set("s"), var_set("s"))).is_true());
        assert_eq!(simplify(&eq(int(2), int(3))), fls());
        assert_eq!(simplify(&add(int(2), int(3))), int(5));
        assert_eq!(simplify(&sub(var_int("x"), int(0))), var_int("x"));
        assert_eq!(simplify(&add(int(0), var_int("x"))), var_int("x"));
        assert!(simplify(&le(var_int("x"), var_int("x"))).is_true());
        assert!(simplify(&lt(var_int("x"), var_int("x"))).is_false());
    }

    #[test]
    fn container_identities() {
        assert!(simplify(&member(var_elem("v"), empty_set())).is_false());
        assert!(simplify(&member(var_elem("v"), set_add(var_set("s"), var_elem("v")))).is_true());
        assert_eq!(simplify(&card(empty_set())), int(0));
        assert_eq!(
            simplify(&map_get(
                map_put(var_map("m"), var_elem("k"), var_elem("v")),
                var_elem("k")
            )),
            var_elem("v")
        );
        assert!(simplify(&map_has_key(empty_map(), var_elem("k"))).is_false());
        assert_eq!(simplify(&map_get(empty_map(), var_elem("k"))), null());
        assert_eq!(simplify(&seq_len(empty_seq())), int(0));
        assert!(simplify(&seq_contains(empty_seq(), var_elem("v"))).is_false());
    }

    #[test]
    fn ite_simplification() {
        assert_eq!(simplify(&ite(tru(), int(1), int(2))), int(1));
        assert_eq!(simplify(&ite(fls(), int(1), int(2))), int(2));
        assert_eq!(
            simplify(&ite(var_bool("c"), var_int("x"), var_int("x"))),
            var_int("x")
        );
    }

    #[test]
    fn simplification_reaches_fixed_point() {
        let t = implies(and2(tru(), var_bool("p")), or2(var_bool("p"), fls()));
        assert!(simplify(&t).is_true());
    }
}
