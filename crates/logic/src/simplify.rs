//! Structural simplification of terms.
//!
//! The simplifier performs sound, semantics-preserving rewriting: constant
//! folding, boolean identities, flattening of nested conjunctions and
//! disjunctions, syntactic-equality reasoning, and a few container-algebra
//! identities. The prover uses it both as a fast first pass (many generated
//! obligations become literally `true`) and to shrink obligations before
//! finite-model search.
//!
//! Soundness is checked by property tests comparing evaluation of the original
//! and the simplified term under random models.

use crate::term::Term;

/// Simplifies `term` bottom-up until a fixed point is reached.
pub fn simplify(term: &Term) -> Term {
    let mut current = term.clone();
    // A small fixed iteration bound; each pass is itself bottom-up, so one or
    // two passes almost always suffice.
    for _ in 0..4 {
        let next = simplify_once(&current);
        if next == current {
            return next;
        }
        current = next;
    }
    current
}

fn simplify_once(term: &Term) -> Term {
    let t = term.map_children(|c| simplify_once(c));
    rewrite(t)
}

fn rewrite(t: Term) -> Term {
    use Term::*;
    match t {
        Not(a) => match *a {
            BoolLit(b) => BoolLit(!b),
            Not(inner) => *inner,
            other => Not(Box::new(other)),
        },
        And(cs) => {
            let mut flat = Vec::new();
            for c in cs {
                match c {
                    BoolLit(true) => {}
                    BoolLit(false) => return BoolLit(false),
                    And(inner) => flat.extend(inner),
                    other => flat.push(other),
                }
            }
            flat.dedup();
            // a & ~a -> false (syntactic)
            if has_complementary_pair(&flat) {
                return BoolLit(false);
            }
            match flat.len() {
                0 => BoolLit(true),
                1 => flat.pop().expect("len checked"),
                _ => And(flat),
            }
        }
        Or(cs) => {
            let mut flat = Vec::new();
            for c in cs {
                match c {
                    BoolLit(false) => {}
                    BoolLit(true) => return BoolLit(true),
                    Or(inner) => flat.extend(inner),
                    other => flat.push(other),
                }
            }
            flat.dedup();
            if has_complementary_pair(&flat) {
                return BoolLit(true);
            }
            match flat.len() {
                0 => BoolLit(false),
                1 => flat.pop().expect("len checked"),
                _ => Or(flat),
            }
        }
        Implies(a, b) => {
            if a.is_false() || b.is_true() {
                BoolLit(true)
            } else if a.is_true() {
                *b
            } else if b.is_false() {
                rewrite(Not(a))
            } else if a == b {
                BoolLit(true)
            } else {
                Implies(a, b)
            }
        }
        Iff(a, b) => {
            if a == b {
                BoolLit(true)
            } else if a.is_true() {
                *b
            } else if b.is_true() {
                *a
            } else if a.is_false() {
                rewrite(Not(b))
            } else if b.is_false() {
                rewrite(Not(a))
            } else {
                Iff(a, b)
            }
        }
        Ite(c, x, y) => {
            if c.is_true() {
                *x
            } else if c.is_false() {
                *y
            } else if x == y {
                *x
            } else {
                Ite(c, x, y)
            }
        }
        Eq(a, b) => {
            if a == b {
                BoolLit(true)
            } else {
                match (&*a, &*b) {
                    (IntLit(x), IntLit(y)) => BoolLit(x == y),
                    (BoolLit(x), BoolLit(y)) => BoolLit(x == y),
                    (BoolLit(true), _) => *b,
                    (_, BoolLit(true)) => *a,
                    (BoolLit(false), _) => rewrite(Not(b)),
                    (_, BoolLit(false)) => rewrite(Not(a)),
                    _ => Eq(a, b),
                }
            }
        }

        Add(a, b) => match (&*a, &*b) {
            (IntLit(x), IntLit(y)) => IntLit(x.wrapping_add(*y)),
            (IntLit(0), _) => *b,
            (_, IntLit(0)) => *a,
            _ => Add(a, b),
        },
        Sub(a, b) => match (&*a, &*b) {
            (IntLit(x), IntLit(y)) => IntLit(x.wrapping_sub(*y)),
            (_, IntLit(0)) => *a,
            _ if a == b => IntLit(0),
            _ => Sub(a, b),
        },
        Neg(a) => match &*a {
            IntLit(x) => IntLit(x.wrapping_neg()),
            _ => Neg(a),
        },
        Lt(a, b) => match (&*a, &*b) {
            (IntLit(x), IntLit(y)) => BoolLit(x < y),
            _ if a == b => BoolLit(false),
            _ => Lt(a, b),
        },
        Le(a, b) => match (&*a, &*b) {
            (IntLit(x), IntLit(y)) => BoolLit(x <= y),
            _ if a == b => BoolLit(true),
            _ => Le(a, b),
        },

        Member(v, s) => match &*s {
            EmptySet => BoolLit(false),
            // v ∈ (s ∪ {v})  — syntactic match only
            SetAdd(_, added) if **added == *v => BoolLit(true),
            _ => Member(v, s),
        },
        Card(s) => match &*s {
            EmptySet => IntLit(0),
            _ => Card(s),
        },
        MapHasKey(m, k) => match &*m {
            EmptyMap => BoolLit(false),
            MapPut(_, key, _) if **key == *k => BoolLit(true),
            _ => MapHasKey(m, k),
        },
        MapGet(m, k) => match &*m {
            EmptyMap => Null,
            MapPut(_, key, value) if **key == *k => (**value).clone(),
            _ => MapGet(m, k),
        },
        MapSize(m) => match &*m {
            EmptyMap => IntLit(0),
            _ => MapSize(m),
        },
        SeqLen(s) => match &*s {
            EmptySeq => IntLit(0),
            _ => SeqLen(s),
        },
        SeqContains(s, v) => match &*s {
            EmptySeq => BoolLit(false),
            _ => SeqContains(s, v),
        },

        other => other,
    }
}

fn has_complementary_pair(terms: &[Term]) -> bool {
    for (i, a) in terms.iter().enumerate() {
        for b in &terms[i + 1..] {
            if let Term::Not(inner) = a {
                if **inner == *b {
                    return true;
                }
            }
            if let Term::Not(inner) = b {
                if **inner == *a {
                    return true;
                }
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::*;

    #[test]
    fn boolean_identities() {
        assert!(simplify(&and2(tru(), tru())).is_true());
        assert!(simplify(&and2(tru(), fls())).is_false());
        assert!(simplify(&or2(fls(), fls())).is_false());
        assert!(simplify(&not(not(tru()))).is_true());
        assert!(simplify(&implies(fls(), var_bool("p"))).is_true());
        assert_eq!(simplify(&implies(tru(), var_bool("p"))), var_bool("p"));
        assert!(simplify(&iff(var_bool("p"), var_bool("p"))).is_true());
        assert!(simplify(&and2(var_bool("p"), not(var_bool("p")))).is_false());
        assert!(simplify(&or2(var_bool("p"), not(var_bool("p")))).is_true());
    }

    #[test]
    fn nested_and_or_flatten() {
        let t = and2(and2(var_bool("a"), var_bool("b")), and2(tru(), var_bool("c")));
        match simplify(&t) {
            Term::And(cs) => assert_eq!(cs.len(), 3),
            other => panic!("expected flattened conjunction, got {other:?}"),
        }
    }

    #[test]
    fn equality_and_arithmetic_folding() {
        assert!(simplify(&eq(var_set("s"), var_set("s"))).is_true());
        assert_eq!(simplify(&eq(int(2), int(3))), fls());
        assert_eq!(simplify(&add(int(2), int(3))), int(5));
        assert_eq!(simplify(&sub(var_int("x"), int(0))), var_int("x"));
        assert_eq!(simplify(&add(int(0), var_int("x"))), var_int("x"));
        assert!(simplify(&le(var_int("x"), var_int("x"))).is_true());
        assert!(simplify(&lt(var_int("x"), var_int("x"))).is_false());
    }

    #[test]
    fn container_identities() {
        assert!(simplify(&member(var_elem("v"), empty_set())).is_false());
        assert!(simplify(&member(var_elem("v"), set_add(var_set("s"), var_elem("v")))).is_true());
        assert_eq!(simplify(&card(empty_set())), int(0));
        assert_eq!(
            simplify(&map_get(map_put(var_map("m"), var_elem("k"), var_elem("v")), var_elem("k"))),
            var_elem("v")
        );
        assert!(simplify(&map_has_key(empty_map(), var_elem("k"))).is_false());
        assert_eq!(simplify(&map_get(empty_map(), var_elem("k"))), null());
        assert_eq!(simplify(&seq_len(empty_seq())), int(0));
        assert!(simplify(&seq_contains(empty_seq(), var_elem("v"))).is_false());
    }

    #[test]
    fn ite_simplification() {
        assert_eq!(simplify(&ite(tru(), int(1), int(2))), int(1));
        assert_eq!(simplify(&ite(fls(), int(1), int(2))), int(2));
        assert_eq!(
            simplify(&ite(var_bool("c"), var_int("x"), var_int("x"))),
            var_int("x")
        );
    }

    #[test]
    fn simplification_reaches_fixed_point() {
        let t = implies(and2(tru(), var_bool("p")), or2(var_bool("p"), fls()));
        assert!(simplify(&t).is_true());
    }
}
