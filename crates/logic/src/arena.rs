//! Hash-consed term arena: interned terms with structural sharing and
//! memoized rewriting.
//!
//! [`Term`] is a boxed tree: every `simplify` / `substitute` / `to_nnf` pass
//! deep-clones it, and syntactic equality tests walk both operands. The
//! obligations generated from the catalog's testing methods are extremely
//! repetitive — the same pre-state expressions, membership conditions, and
//! update chains appear in thousands of obligations — so the prover hot paths
//! pay for the same rewrites over and over.
//!
//! The arena fixes this by *interning*: structurally equal terms get the same
//! [`TermId`], so
//!
//! * equality of sub-terms is an integer comparison,
//! * every node carries precomputed metadata (node count, a 128-bit
//!   structural hash that is stable across arenas and threads, and the sorted
//!   free-variable list), and
//! * `simplify` / `nnf` are memoized **per id**: a sub-DAG shared by many
//!   obligations is rewritten once, not once per occurrence, and repeated
//!   proves of the same formula are O(1) after the first.
//!
//! Each thread owns one arena (see [`with_arena`]); ids are meaningful only
//! within their arena, while [`structural_hash`]es are portable and are used
//! by the prover's cross-thread obligation dedup cache.

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::rc::Rc;

use crate::sort::Sort;
use crate::term::{Term, Var};

/// Handle to an interned term. Ids are arena-local: two ids compare equal if
/// and only if they were produced by the same arena for structurally equal
/// terms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TermId(u32);

impl TermId {
    fn idx(self) -> usize {
        self.0 as usize
    }
}

/// Handle to an interned variable name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Sym(u32);

impl Sym {
    fn idx(self) -> usize {
        self.0 as usize
    }
}

/// Interned representation of one term node: children are [`TermId`]s.
/// Mirrors the [`Term`] variants one-to-one.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Node {
    Var(Sym, Sort),
    BoolLit(bool),
    IntLit(i64),
    Null,
    EmptySet,
    EmptyMap,
    EmptySeq,
    Not(TermId),
    Neg(TermId),
    Card(TermId),
    MapSize(TermId),
    SeqLen(TermId),
    And(Rc<[TermId]>),
    Or(Rc<[TermId]>),
    Implies(TermId, TermId),
    Iff(TermId, TermId),
    Eq(TermId, TermId),
    Add(TermId, TermId),
    Sub(TermId, TermId),
    Lt(TermId, TermId),
    Le(TermId, TermId),
    SetAdd(TermId, TermId),
    SetRemove(TermId, TermId),
    Member(TermId, TermId),
    MapRemove(TermId, TermId),
    MapGet(TermId, TermId),
    MapHasKey(TermId, TermId),
    SeqRemoveAt(TermId, TermId),
    SeqAt(TermId, TermId),
    SeqIndexOf(TermId, TermId),
    SeqLastIndexOf(TermId, TermId),
    SeqContains(TermId, TermId),
    Ite(TermId, TermId, TermId),
    MapPut(TermId, TermId, TermId),
    SeqInsertAt(TermId, TermId, TermId),
    SeqSetAt(TermId, TermId, TermId),
    ForallInt(Sym, TermId, TermId, TermId),
    ExistsInt(Sym, TermId, TermId, TermId),
}

/// Precomputed per-node metadata.
#[derive(Debug, Clone, Copy)]
struct Meta {
    /// Number of nodes in the term (counting shared sub-DAGs once per
    /// occurrence, i.e. the size of the equivalent tree).
    size: u64,
    /// Arena-independent structural hash (two independent 64-bit streams).
    hash: u128,
}

fn mix(h: u64, x: u64) -> u64 {
    // 64-bit FNV-1a over 8-byte words, with an avalanche rotation.
    (h ^ x).wrapping_mul(0x0000_0100_0000_01B3).rotate_left(23)
}

fn str_hash(s: &str, seed: u64) -> u64 {
    let mut h = seed ^ 0xCBF2_9CE4_8422_2325;
    for b in s.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A hash-consing interner for [`Term`]s.
///
/// Obtain the calling thread's arena with [`with_arena`]; standalone arenas
/// can be created with [`TermArena::new`] (useful in tests).
#[derive(Debug, Default)]
pub struct TermArena {
    nodes: Vec<Node>,
    meta: Vec<Meta>,
    /// Sorted-by-symbol free variable list of each node.
    free: Vec<Rc<[(Sym, Sort)]>>,
    dedup: HashMap<Node, TermId>,
    sym_names: Vec<Rc<str>>,
    sym_hashes: Vec<u128>,
    sym_ids: HashMap<Rc<str>, Sym>,
    simplify_memo: HashMap<TermId, TermId>,
    nnf_memo: HashMap<(TermId, bool), TermId>,
    normalize_memo: HashMap<TermId, TermId>,
}

impl TermArena {
    /// Creates an empty arena.
    pub fn new() -> TermArena {
        TermArena::default()
    }

    /// Number of distinct interned terms.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Discards every interned term, symbol, and memo table, returning the
    /// arena to its freshly-created state.
    ///
    /// Interning is otherwise monotonic: every `simplify` / `substitute` /
    /// `to_nnf` call permanently retains its inputs, outputs, and memo
    /// entries. Batch runs (a catalog verification) want exactly that; a
    /// long-lived process generating unboundedly many fresh terms should
    /// call `with_arena(|a| a.clear())` at a phase boundary. All previously
    /// issued [`TermId`]s and [`Sym`]s are invalidated.
    pub fn clear(&mut self) {
        *self = TermArena::default();
    }

    /// Interns a variable name.
    pub fn sym(&mut self, name: &str) -> Sym {
        if let Some(&s) = self.sym_ids.get(name) {
            return s;
        }
        let rc: Rc<str> = Rc::from(name);
        let s = Sym(self.sym_names.len() as u32);
        self.sym_names.push(Rc::clone(&rc));
        self.sym_hashes
            .push(u128::from(str_hash(name, 0)) | (u128::from(str_hash(name, 0x9E37)) << 64));
        self.sym_ids.insert(rc, s);
        s
    }

    /// The name behind a symbol.
    pub fn sym_name(&self, s: Sym) -> &str {
        &self.sym_names[s.idx()]
    }

    /// The arena-independent 128-bit hash of a symbol's name (computed once
    /// at interning time; equal for equal names on every thread). Callers
    /// building cross-thread cache keys should use this instead of rehashing
    /// the name.
    pub fn sym_hash(&self, s: Sym) -> u128 {
        self.sym_hashes[s.idx()]
    }

    fn node(&self, id: TermId) -> &Node {
        &self.nodes[id.idx()]
    }

    /// The number of nodes of the (tree view of the) interned term.
    pub fn size_of(&self, id: TermId) -> u64 {
        self.meta[id.idx()].size
    }

    /// Arena-independent 128-bit structural hash of the interned term: equal
    /// for structurally equal terms regardless of which arena (or thread)
    /// interned them. Used as the key of the prover's obligation dedup cache.
    pub fn structural_hash(&self, id: TermId) -> u128 {
        self.meta[id.idx()].hash
    }

    /// The free variables of the interned term with their sorts, sorted by
    /// symbol.
    pub fn free_vars_of(&self, id: TermId) -> &[(Sym, Sort)] {
        &self.free[id.idx()]
    }

    /// The free variables as a name-ordered map (the [`crate::free_vars`]
    /// result shape).
    pub fn free_vars_map(&self, id: TermId) -> BTreeMap<String, Sort> {
        self.free[id.idx()]
            .iter()
            .map(|&(s, sort)| (self.sym_names[s.idx()].to_string(), sort))
            .collect()
    }

    /// Returns `true` if the interned term is the literal `true` (or an empty
    /// conjunction).
    pub fn is_true_id(&self, id: TermId) -> bool {
        match self.node(id) {
            Node::BoolLit(true) => true,
            Node::And(cs) => cs.is_empty(),
            _ => false,
        }
    }

    /// Returns `true` if the interned term is the literal `false` (or an
    /// empty disjunction).
    pub fn is_false_id(&self, id: TermId) -> bool {
        match self.node(id) {
            Node::BoolLit(false) => true,
            Node::Or(cs) => cs.is_empty(),
            _ => false,
        }
    }

    fn intern_node(&mut self, node: Node) -> TermId {
        if let Some(&id) = self.dedup.get(&node) {
            return id;
        }
        let meta = self.compute_meta(&node);
        let free = self.compute_free(&node);
        let id = TermId(self.nodes.len() as u32);
        self.nodes.push(node.clone());
        self.meta.push(meta);
        self.free.push(free);
        self.dedup.insert(node, id);
        id
    }

    fn compute_meta(&self, node: &Node) -> Meta {
        let tag = node_tag(node);
        let mut h1 = mix(0x517C_C1B7_2722_0A95, u64::from(tag));
        let mut h2 = mix(0x2545_F491_4F6C_DD1D, u64::from(tag) ^ 0xA5A5);
        let mut size = 1u64;
        match node {
            Node::Var(s, sort) => {
                let sh = self.sym_hashes[s.idx()];
                h1 = mix(h1, sh as u64);
                h2 = mix(h2, (sh >> 64) as u64);
                h1 = mix(h1, *sort as u64);
                h2 = mix(h2, *sort as u64);
            }
            Node::BoolLit(b) => {
                h1 = mix(h1, u64::from(*b));
                h2 = mix(h2, u64::from(*b));
            }
            Node::IntLit(i) => {
                h1 = mix(h1, *i as u64);
                h2 = mix(h2, (*i as u64).rotate_left(17));
            }
            Node::ForallInt(s, ..) | Node::ExistsInt(s, ..) => {
                let sh = self.sym_hashes[s.idx()];
                h1 = mix(h1, sh as u64);
                h2 = mix(h2, (sh >> 64) as u64);
            }
            _ => {}
        }
        for_each_child_node(node, |c| {
            let m = &self.meta[c.idx()];
            size += m.size;
            h1 = mix(h1, m.hash as u64);
            h2 = mix(h2, (m.hash >> 64) as u64);
        });
        Meta {
            size,
            hash: u128::from(h1) | (u128::from(h2) << 64),
        }
    }

    fn compute_free(&self, node: &Node) -> Rc<[(Sym, Sort)]> {
        match node {
            Node::Var(s, sort) => Rc::from(vec![(*s, *sort)]),
            Node::ForallInt(var, lo, hi, body) | Node::ExistsInt(var, lo, hi, body) => {
                let mut out: Vec<(Sym, Sort)> = Vec::new();
                out.extend(self.free[lo.idx()].iter().copied());
                out.extend(self.free[hi.idx()].iter().copied());
                out.extend(
                    self.free[body.idx()]
                        .iter()
                        .copied()
                        .filter(|(s, _)| s != var),
                );
                out.sort_unstable();
                out.dedup();
                Rc::from(out)
            }
            _ => {
                let mut out: Vec<(Sym, Sort)> = Vec::new();
                let mut child_count = 0usize;
                let mut only: Option<TermId> = None;
                for_each_child_node(node, |c| {
                    child_count += 1;
                    only = Some(c);
                    out.extend(self.free[c.idx()].iter().copied());
                });
                if child_count == 1 {
                    // Single child: share its list instead of copying.
                    return Rc::clone(&self.free[only.expect("one child").idx()]);
                }
                out.sort_unstable();
                out.dedup();
                Rc::from(out)
            }
        }
    }

    // -----------------------------------------------------------------------
    // Interning and reconstruction
    // -----------------------------------------------------------------------

    /// Interns a boxed term, returning its id. Structurally equal terms
    /// always return the same id.
    pub fn intern(&mut self, term: &Term) -> TermId {
        use Term as T;
        let node = match term {
            T::Var(v) => {
                let s = self.sym(&v.name);
                Node::Var(s, v.sort)
            }
            T::BoolLit(b) => Node::BoolLit(*b),
            T::IntLit(i) => Node::IntLit(*i),
            T::Null => Node::Null,
            T::EmptySet => Node::EmptySet,
            T::EmptyMap => Node::EmptyMap,
            T::EmptySeq => Node::EmptySeq,
            T::Not(a) => Node::Not(self.intern(a)),
            T::Neg(a) => Node::Neg(self.intern(a)),
            T::Card(a) => Node::Card(self.intern(a)),
            T::MapSize(a) => Node::MapSize(self.intern(a)),
            T::SeqLen(a) => Node::SeqLen(self.intern(a)),
            T::And(cs) => Node::And(cs.iter().map(|c| self.intern(c)).collect()),
            T::Or(cs) => Node::Or(cs.iter().map(|c| self.intern(c)).collect()),
            T::Implies(a, b) => Node::Implies(self.intern(a), self.intern(b)),
            T::Iff(a, b) => Node::Iff(self.intern(a), self.intern(b)),
            T::Eq(a, b) => Node::Eq(self.intern(a), self.intern(b)),
            T::Add(a, b) => Node::Add(self.intern(a), self.intern(b)),
            T::Sub(a, b) => Node::Sub(self.intern(a), self.intern(b)),
            T::Lt(a, b) => Node::Lt(self.intern(a), self.intern(b)),
            T::Le(a, b) => Node::Le(self.intern(a), self.intern(b)),
            T::SetAdd(a, b) => Node::SetAdd(self.intern(a), self.intern(b)),
            T::SetRemove(a, b) => Node::SetRemove(self.intern(a), self.intern(b)),
            T::Member(a, b) => Node::Member(self.intern(a), self.intern(b)),
            T::MapRemove(a, b) => Node::MapRemove(self.intern(a), self.intern(b)),
            T::MapGet(a, b) => Node::MapGet(self.intern(a), self.intern(b)),
            T::MapHasKey(a, b) => Node::MapHasKey(self.intern(a), self.intern(b)),
            T::SeqRemoveAt(a, b) => Node::SeqRemoveAt(self.intern(a), self.intern(b)),
            T::SeqAt(a, b) => Node::SeqAt(self.intern(a), self.intern(b)),
            T::SeqIndexOf(a, b) => Node::SeqIndexOf(self.intern(a), self.intern(b)),
            T::SeqLastIndexOf(a, b) => Node::SeqLastIndexOf(self.intern(a), self.intern(b)),
            T::SeqContains(a, b) => Node::SeqContains(self.intern(a), self.intern(b)),
            T::Ite(a, b, c) => Node::Ite(self.intern(a), self.intern(b), self.intern(c)),
            T::MapPut(a, b, c) => Node::MapPut(self.intern(a), self.intern(b), self.intern(c)),
            T::SeqInsertAt(a, b, c) => {
                Node::SeqInsertAt(self.intern(a), self.intern(b), self.intern(c))
            }
            T::SeqSetAt(a, b, c) => Node::SeqSetAt(self.intern(a), self.intern(b), self.intern(c)),
            T::ForallInt { var, lo, hi, body } => {
                let s = self.sym(var);
                Node::ForallInt(s, self.intern(lo), self.intern(hi), self.intern(body))
            }
            T::ExistsInt { var, lo, hi, body } => {
                let s = self.sym(var);
                Node::ExistsInt(s, self.intern(lo), self.intern(hi), self.intern(body))
            }
        };
        self.intern_node(node)
    }

    /// Reconstructs the boxed tree of an interned term.
    pub fn to_term(&self, id: TermId) -> Term {
        let b = |t: &TermId| Box::new(self.to_term(*t));
        match self.node(id) {
            Node::Var(s, sort) => Term::Var(Var::new(self.sym_names[s.idx()].to_string(), *sort)),
            Node::BoolLit(x) => Term::BoolLit(*x),
            Node::IntLit(i) => Term::IntLit(*i),
            Node::Null => Term::Null,
            Node::EmptySet => Term::EmptySet,
            Node::EmptyMap => Term::EmptyMap,
            Node::EmptySeq => Term::EmptySeq,
            Node::Not(a) => Term::Not(b(a)),
            Node::Neg(a) => Term::Neg(b(a)),
            Node::Card(a) => Term::Card(b(a)),
            Node::MapSize(a) => Term::MapSize(b(a)),
            Node::SeqLen(a) => Term::SeqLen(b(a)),
            Node::And(cs) => Term::And(cs.iter().map(|&c| self.to_term(c)).collect()),
            Node::Or(cs) => Term::Or(cs.iter().map(|&c| self.to_term(c)).collect()),
            Node::Implies(x, y) => Term::Implies(b(x), b(y)),
            Node::Iff(x, y) => Term::Iff(b(x), b(y)),
            Node::Eq(x, y) => Term::Eq(b(x), b(y)),
            Node::Add(x, y) => Term::Add(b(x), b(y)),
            Node::Sub(x, y) => Term::Sub(b(x), b(y)),
            Node::Lt(x, y) => Term::Lt(b(x), b(y)),
            Node::Le(x, y) => Term::Le(b(x), b(y)),
            Node::SetAdd(x, y) => Term::SetAdd(b(x), b(y)),
            Node::SetRemove(x, y) => Term::SetRemove(b(x), b(y)),
            Node::Member(x, y) => Term::Member(b(x), b(y)),
            Node::MapRemove(x, y) => Term::MapRemove(b(x), b(y)),
            Node::MapGet(x, y) => Term::MapGet(b(x), b(y)),
            Node::MapHasKey(x, y) => Term::MapHasKey(b(x), b(y)),
            Node::SeqRemoveAt(x, y) => Term::SeqRemoveAt(b(x), b(y)),
            Node::SeqAt(x, y) => Term::SeqAt(b(x), b(y)),
            Node::SeqIndexOf(x, y) => Term::SeqIndexOf(b(x), b(y)),
            Node::SeqLastIndexOf(x, y) => Term::SeqLastIndexOf(b(x), b(y)),
            Node::SeqContains(x, y) => Term::SeqContains(b(x), b(y)),
            Node::Ite(x, y, z) => Term::Ite(b(x), b(y), b(z)),
            Node::MapPut(x, y, z) => Term::MapPut(b(x), b(y), b(z)),
            Node::SeqInsertAt(x, y, z) => Term::SeqInsertAt(b(x), b(y), b(z)),
            Node::SeqSetAt(x, y, z) => Term::SeqSetAt(b(x), b(y), b(z)),
            Node::ForallInt(s, lo, hi, body) => Term::ForallInt {
                var: self.sym_names[s.idx()].to_string(),
                lo: b(lo),
                hi: b(hi),
                body: b(body),
            },
            Node::ExistsInt(s, lo, hi, body) => Term::ExistsInt {
                var: self.sym_names[s.idx()].to_string(),
                lo: b(lo),
                hi: b(hi),
                body: b(body),
            },
        }
    }

    // -----------------------------------------------------------------------
    // Constructors over ids (used by the structural prover)
    // -----------------------------------------------------------------------

    /// Interns a boolean literal.
    pub fn bool_id(&mut self, value: bool) -> TermId {
        self.intern_node(Node::BoolLit(value))
    }

    /// Interns `And` over the given conjuncts.
    pub fn and_ids(&mut self, conjuncts: Vec<TermId>) -> TermId {
        self.intern_node(Node::And(conjuncts.into()))
    }

    /// Interns `lhs --> rhs`.
    pub fn implies_ids(&mut self, lhs: TermId, rhs: TermId) -> TermId {
        self.intern_node(Node::Implies(lhs, rhs))
    }

    // -----------------------------------------------------------------------
    // Memoized simplification
    // -----------------------------------------------------------------------

    /// Rebuilds `id`, mapping every child id through `f`; leaves are
    /// returned unchanged, quantifier binders and literal payloads are
    /// preserved, and the rebuilt node is interned. This is the single
    /// exhaustive child walker shared by simplification, substitution, and
    /// set-run normalization, so a new `Term` variant is wired up in exactly
    /// one place.
    fn map_children_with(
        &mut self,
        id: TermId,
        f: &mut dyn FnMut(&mut TermArena, TermId) -> TermId,
    ) -> TermId {
        let node = self.node(id).clone();
        let new = match node {
            Node::Var(..)
            | Node::BoolLit(_)
            | Node::IntLit(_)
            | Node::Null
            | Node::EmptySet
            | Node::EmptyMap
            | Node::EmptySeq => return id,
            Node::Not(a) => Node::Not(f(self, a)),
            Node::Neg(a) => Node::Neg(f(self, a)),
            Node::Card(a) => Node::Card(f(self, a)),
            Node::MapSize(a) => Node::MapSize(f(self, a)),
            Node::SeqLen(a) => Node::SeqLen(f(self, a)),
            Node::And(cs) => Node::And(cs.iter().map(|&c| f(self, c)).collect()),
            Node::Or(cs) => Node::Or(cs.iter().map(|&c| f(self, c)).collect()),
            Node::Implies(x, y) => Node::Implies(f(self, x), f(self, y)),
            Node::Iff(x, y) => Node::Iff(f(self, x), f(self, y)),
            Node::Eq(x, y) => Node::Eq(f(self, x), f(self, y)),
            Node::Add(x, y) => Node::Add(f(self, x), f(self, y)),
            Node::Sub(x, y) => Node::Sub(f(self, x), f(self, y)),
            Node::Lt(x, y) => Node::Lt(f(self, x), f(self, y)),
            Node::Le(x, y) => Node::Le(f(self, x), f(self, y)),
            Node::SetAdd(x, y) => Node::SetAdd(f(self, x), f(self, y)),
            Node::SetRemove(x, y) => Node::SetRemove(f(self, x), f(self, y)),
            Node::Member(x, y) => Node::Member(f(self, x), f(self, y)),
            Node::MapRemove(x, y) => Node::MapRemove(f(self, x), f(self, y)),
            Node::MapGet(x, y) => Node::MapGet(f(self, x), f(self, y)),
            Node::MapHasKey(x, y) => Node::MapHasKey(f(self, x), f(self, y)),
            Node::SeqRemoveAt(x, y) => Node::SeqRemoveAt(f(self, x), f(self, y)),
            Node::SeqAt(x, y) => Node::SeqAt(f(self, x), f(self, y)),
            Node::SeqIndexOf(x, y) => Node::SeqIndexOf(f(self, x), f(self, y)),
            Node::SeqLastIndexOf(x, y) => Node::SeqLastIndexOf(f(self, x), f(self, y)),
            Node::SeqContains(x, y) => Node::SeqContains(f(self, x), f(self, y)),
            Node::Ite(x, y, z) => Node::Ite(f(self, x), f(self, y), f(self, z)),
            Node::MapPut(x, y, z) => Node::MapPut(f(self, x), f(self, y), f(self, z)),
            Node::SeqInsertAt(x, y, z) => Node::SeqInsertAt(f(self, x), f(self, y), f(self, z)),
            Node::SeqSetAt(x, y, z) => Node::SeqSetAt(f(self, x), f(self, y), f(self, z)),
            Node::ForallInt(s, lo, hi, body) => {
                Node::ForallInt(s, f(self, lo), f(self, hi), f(self, body))
            }
            Node::ExistsInt(s, lo, hi, body) => {
                Node::ExistsInt(s, f(self, lo), f(self, hi), f(self, body))
            }
        };
        self.intern_node(new)
    }

    /// Simplifies an interned term to fixpoint, memoized per id.
    ///
    /// The rewrite rules are exactly those of [`crate::simplify()`] (constant
    /// folding, boolean identities, flattening, syntactic-equality reasoning,
    /// container identities); the difference is that equality checks are id
    /// comparisons and results are cached, so a sub-DAG occurring in many
    /// obligations is rewritten once.
    pub fn simplify_id(&mut self, id: TermId) -> TermId {
        if let Some(&r) = self.simplify_memo.get(&id) {
            return r;
        }
        let rebuilt = self.simplify_children(id);
        let result = self.rewrite_fix(rebuilt);
        self.simplify_memo.insert(id, result);
        self.simplify_memo.insert(rebuilt, result);
        self.simplify_memo.insert(result, result);
        result
    }

    fn simplify_children(&mut self, id: TermId) -> TermId {
        self.map_children_with(id, &mut |arena, child| arena.simplify_id(child))
    }

    /// Applies root rewrite steps until none fires (bounded defensively).
    fn rewrite_fix(&mut self, mut id: TermId) -> TermId {
        for _ in 0..128 {
            match self.rewrite_step(id) {
                Some(next) if next != id => id = next,
                _ => return id,
            }
        }
        id
    }

    /// One root rewrite step; children are assumed already simplified.
    /// Mirrors the rule set of the boxed-tree simplifier exactly.
    fn rewrite_step(&mut self, id: TermId) -> Option<TermId> {
        let node = self.node(id).clone();
        match node {
            Node::Not(a) => match *self.node(a) {
                Node::BoolLit(b) => Some(self.bool_id(!b)),
                Node::Not(inner) => Some(inner),
                _ => None,
            },
            Node::And(cs) => {
                let mut flat: Vec<TermId> = Vec::with_capacity(cs.len());
                let mut changed = false;
                for &c in cs.iter() {
                    match self.node(c) {
                        Node::BoolLit(true) => changed = true,
                        Node::BoolLit(false) => return Some(self.bool_id(false)),
                        Node::And(inner) => {
                            changed = true;
                            flat.extend(inner.iter().copied());
                        }
                        _ => flat.push(c),
                    }
                }
                let before = flat.len();
                flat.dedup();
                changed |= flat.len() != before;
                if self.has_complementary_pair(&flat) {
                    return Some(self.bool_id(false));
                }
                match flat.len() {
                    0 => Some(self.bool_id(true)),
                    1 => Some(flat[0]),
                    _ if changed => Some(self.intern_node(Node::And(flat.into()))),
                    _ => None,
                }
            }
            Node::Or(cs) => {
                let mut flat: Vec<TermId> = Vec::with_capacity(cs.len());
                let mut changed = false;
                for &c in cs.iter() {
                    match self.node(c) {
                        Node::BoolLit(false) => changed = true,
                        Node::BoolLit(true) => return Some(self.bool_id(true)),
                        Node::Or(inner) => {
                            changed = true;
                            flat.extend(inner.iter().copied());
                        }
                        _ => flat.push(c),
                    }
                }
                let before = flat.len();
                flat.dedup();
                changed |= flat.len() != before;
                if self.has_complementary_pair(&flat) {
                    return Some(self.bool_id(true));
                }
                match flat.len() {
                    0 => Some(self.bool_id(false)),
                    1 => Some(flat[0]),
                    _ if changed => Some(self.intern_node(Node::Or(flat.into()))),
                    _ => None,
                }
            }
            Node::Implies(a, b) => {
                if self.is_false_id(a) || self.is_true_id(b) {
                    Some(self.bool_id(true))
                } else if self.is_true_id(a) {
                    Some(b)
                } else if self.is_false_id(b) {
                    let n = self.intern_node(Node::Not(a));
                    Some(self.rewrite_fix(n))
                } else if a == b {
                    Some(self.bool_id(true))
                } else {
                    None
                }
            }
            Node::Iff(a, b) => {
                if a == b {
                    Some(self.bool_id(true))
                } else if self.is_true_id(a) {
                    Some(b)
                } else if self.is_true_id(b) {
                    Some(a)
                } else if self.is_false_id(a) {
                    let n = self.intern_node(Node::Not(b));
                    Some(self.rewrite_fix(n))
                } else if self.is_false_id(b) {
                    let n = self.intern_node(Node::Not(a));
                    Some(self.rewrite_fix(n))
                } else {
                    None
                }
            }
            Node::Ite(c, x, y) => {
                if self.is_true_id(c) {
                    Some(x)
                } else if self.is_false_id(c) {
                    Some(y)
                } else if x == y {
                    Some(x)
                } else {
                    None
                }
            }
            Node::Eq(a, b) => {
                if a == b {
                    return Some(self.bool_id(true));
                }
                match (self.node(a).clone(), self.node(b).clone()) {
                    (Node::IntLit(x), Node::IntLit(y)) => Some(self.bool_id(x == y)),
                    (Node::BoolLit(x), Node::BoolLit(y)) => Some(self.bool_id(x == y)),
                    (Node::BoolLit(true), _) => Some(b),
                    (_, Node::BoolLit(true)) => Some(a),
                    (Node::BoolLit(false), _) => {
                        let n = self.intern_node(Node::Not(b));
                        Some(self.rewrite_fix(n))
                    }
                    (_, Node::BoolLit(false)) => {
                        let n = self.intern_node(Node::Not(a));
                        Some(self.rewrite_fix(n))
                    }
                    _ => None,
                }
            }
            Node::Add(a, b) => match (self.node(a).clone(), self.node(b).clone()) {
                (Node::IntLit(x), Node::IntLit(y)) => {
                    Some(self.intern_node(Node::IntLit(x.wrapping_add(y))))
                }
                (Node::IntLit(0), _) => Some(b),
                (_, Node::IntLit(0)) => Some(a),
                _ => None,
            },
            Node::Sub(a, b) => match (self.node(a).clone(), self.node(b).clone()) {
                (Node::IntLit(x), Node::IntLit(y)) => {
                    Some(self.intern_node(Node::IntLit(x.wrapping_sub(y))))
                }
                (_, Node::IntLit(0)) => Some(a),
                _ if a == b => Some(self.intern_node(Node::IntLit(0))),
                _ => None,
            },
            Node::Neg(a) => match *self.node(a) {
                Node::IntLit(x) => Some(self.intern_node(Node::IntLit(x.wrapping_neg()))),
                _ => None,
            },
            Node::Lt(a, b) => match (self.node(a), self.node(b)) {
                (Node::IntLit(x), Node::IntLit(y)) => {
                    let r = x < y;
                    Some(self.bool_id(r))
                }
                _ if a == b => Some(self.bool_id(false)),
                _ => None,
            },
            Node::Le(a, b) => match (self.node(a), self.node(b)) {
                (Node::IntLit(x), Node::IntLit(y)) => {
                    let r = x <= y;
                    Some(self.bool_id(r))
                }
                _ if a == b => Some(self.bool_id(true)),
                _ => None,
            },
            Node::Member(v, s) => match self.node(s) {
                Node::EmptySet => Some(self.bool_id(false)),
                // v ∈ (s ∪ {v}) — syntactic match only.
                Node::SetAdd(_, added) if *added == v => Some(self.bool_id(true)),
                _ => None,
            },
            Node::Card(s) => match self.node(s) {
                Node::EmptySet => Some(self.intern_node(Node::IntLit(0))),
                _ => None,
            },
            Node::MapHasKey(m, k) => match self.node(m) {
                Node::EmptyMap => Some(self.bool_id(false)),
                Node::MapPut(_, key, _) if *key == k => Some(self.bool_id(true)),
                _ => None,
            },
            Node::MapGet(m, k) => match self.node(m) {
                Node::EmptyMap => Some(self.intern_node(Node::Null)),
                Node::MapPut(_, key, value) if *key == k => Some(*value),
                _ => None,
            },
            Node::MapSize(m) => match self.node(m) {
                Node::EmptyMap => Some(self.intern_node(Node::IntLit(0))),
                _ => None,
            },
            Node::SeqLen(s) => match self.node(s) {
                Node::EmptySeq => Some(self.intern_node(Node::IntLit(0))),
                _ => None,
            },
            Node::SeqContains(s, _) => match self.node(s) {
                Node::EmptySeq => Some(self.bool_id(false)),
                _ => None,
            },
            _ => None,
        }
    }

    fn has_complementary_pair(&self, terms: &[TermId]) -> bool {
        for (i, &a) in terms.iter().enumerate() {
            for &b in &terms[i + 1..] {
                if let Node::Not(inner) = self.node(a) {
                    if *inner == b {
                        return true;
                    }
                }
                if let Node::Not(inner) = self.node(b) {
                    if *inner == a {
                        return true;
                    }
                }
            }
        }
        false
    }

    // -----------------------------------------------------------------------
    // Memoized negation normal form
    // -----------------------------------------------------------------------

    /// Converts an interned boolean term to negation normal form, memoized on
    /// `(id, negated)`. Mirrors [`crate::to_nnf`].
    pub fn nnf_id(&mut self, id: TermId, negated: bool) -> TermId {
        if let Some(&r) = self.nnf_memo.get(&(id, negated)) {
            return r;
        }
        let node = self.node(id).clone();
        let result = match node {
            Node::BoolLit(b) => self.bool_id(b != negated),
            Node::Not(a) => self.nnf_id(a, !negated),
            Node::And(cs) => {
                let parts: Vec<TermId> = cs.iter().map(|&c| self.nnf_id(c, negated)).collect();
                if negated {
                    self.intern_node(Node::Or(parts.into()))
                } else {
                    self.intern_node(Node::And(parts.into()))
                }
            }
            Node::Or(cs) => {
                let parts: Vec<TermId> = cs.iter().map(|&c| self.nnf_id(c, negated)).collect();
                if negated {
                    self.intern_node(Node::And(parts.into()))
                } else {
                    self.intern_node(Node::Or(parts.into()))
                }
            }
            Node::Implies(a, b) => {
                if negated {
                    // ~(a --> b) == a & ~b
                    let pa = self.nnf_id(a, false);
                    let pb = self.nnf_id(b, true);
                    self.intern_node(Node::And(vec![pa, pb].into()))
                } else {
                    // a --> b == ~a | b
                    let pa = self.nnf_id(a, true);
                    let pb = self.nnf_id(b, false);
                    self.intern_node(Node::Or(vec![pa, pb].into()))
                }
            }
            Node::Iff(a, b) => {
                let (pp, pn) = (self.nnf_id(a, false), self.nnf_id(a, true));
                let (qp, qn) = (self.nnf_id(b, false), self.nnf_id(b, true));
                if negated {
                    // (a & ~b) | (~a & b)
                    let left = self.intern_node(Node::And(vec![pp, qn].into()));
                    let right = self.intern_node(Node::And(vec![pn, qp].into()));
                    self.intern_node(Node::Or(vec![left, right].into()))
                } else {
                    // (a & b) | (~a & ~b)
                    let left = self.intern_node(Node::And(vec![pp, qp].into()));
                    let right = self.intern_node(Node::And(vec![pn, qn].into()));
                    self.intern_node(Node::Or(vec![left, right].into()))
                }
            }
            Node::ForallInt(s, lo, hi, body) => {
                let inner = self.nnf_id(body, negated);
                if negated {
                    self.intern_node(Node::ExistsInt(s, lo, hi, inner))
                } else {
                    self.intern_node(Node::ForallInt(s, lo, hi, inner))
                }
            }
            Node::ExistsInt(s, lo, hi, body) => {
                let inner = self.nnf_id(body, negated);
                if negated {
                    self.intern_node(Node::ForallInt(s, lo, hi, inner))
                } else {
                    self.intern_node(Node::ExistsInt(s, lo, hi, inner))
                }
            }
            // Ite at the boolean level: expand into guarded cases.
            Node::Ite(c, x, y) => {
                let cp = self.nnf_id(c, false);
                let cn = self.nnf_id(c, true);
                let xb = self.nnf_id(x, negated);
                let yb = self.nnf_id(y, negated);
                let pos = self.intern_node(Node::And(vec![cp, xb].into()));
                let neg = self.intern_node(Node::And(vec![cn, yb].into()));
                self.intern_node(Node::Or(vec![pos, neg].into()))
            }
            // Atoms.
            _ => {
                if negated {
                    self.intern_node(Node::Not(id))
                } else {
                    id
                }
            }
        };
        self.nnf_memo.insert((id, negated), result);
        result
    }

    // -----------------------------------------------------------------------
    // Substitution (per-call memo over the shared DAG)
    // -----------------------------------------------------------------------

    /// Substitutes interned terms for free variables.
    ///
    /// Semantics match [`crate::substitute`]: quantifier-bound variables
    /// shadow substitution entries. Within one call every shared sub-DAG is
    /// rewritten once (per-call memo), and sub-terms whose cached free
    /// variables are disjoint from the substitution domain are returned
    /// untouched.
    pub fn substitute_id(&mut self, id: TermId, subst: &HashMap<Sym, TermId>) -> TermId {
        if subst.is_empty() {
            return id;
        }
        let mut memo: HashMap<TermId, TermId> = HashMap::new();
        self.subst_rec(id, subst, &mut memo)
    }

    fn subst_rec(
        &mut self,
        id: TermId,
        subst: &HashMap<Sym, TermId>,
        memo: &mut HashMap<TermId, TermId>,
    ) -> TermId {
        if self.free[id.idx()]
            .iter()
            .all(|(s, _)| !subst.contains_key(s))
        {
            return id;
        }
        if let Some(&r) = memo.get(&id) {
            return r;
        }
        let node = self.node(id).clone();
        let result = match node {
            Node::Var(s, _) => subst.get(&s).copied().unwrap_or(id),
            Node::ForallInt(s, lo, hi, body) | Node::ExistsInt(s, lo, hi, body) => {
                let lo2 = self.subst_rec(lo, subst, memo);
                let hi2 = self.subst_rec(hi, subst, memo);
                let body2 = if subst.contains_key(&s) {
                    // The binder shadows the substitution: narrow the map and
                    // use a fresh memo (results under a different map must
                    // not leak into this one).
                    let mut narrowed = subst.clone();
                    narrowed.remove(&s);
                    let mut inner_memo = HashMap::new();
                    if narrowed.is_empty() {
                        body
                    } else {
                        self.subst_rec(body, &narrowed, &mut inner_memo)
                    }
                } else {
                    self.subst_rec(body, subst, memo)
                };
                let new = match self.node(id) {
                    Node::ForallInt(..) => Node::ForallInt(s, lo2, hi2, body2),
                    _ => Node::ExistsInt(s, lo2, hi2, body2),
                };
                self.intern_node(new)
            }
            _ => {
                self.map_children_with(id, &mut |arena, child| arena.subst_rec(child, subst, memo))
            }
        };
        memo.insert(id, result);
        result
    }

    // -----------------------------------------------------------------------
    // Set-update-run normalization (used by the structural prover)
    // -----------------------------------------------------------------------

    /// Normalizes maximal runs of `SetAdd` (and of `SetRemove`) updates by
    /// sorting the inserted (removed) elements into a canonical order and
    /// collapsing duplicates, bottom-up and memoized.
    ///
    /// Insertions commute with insertions and removals with removals, so any
    /// deterministic order is semantics-preserving; the arena orders by id,
    /// which is stable within a thread. Runs are not merged across an
    /// add/remove boundary.
    pub fn normalize_sets_id(&mut self, id: TermId) -> TermId {
        if let Some(&r) = self.normalize_memo.get(&id) {
            return r;
        }
        let rebuilt = self.normalize_children(id);
        let result = match self.node(rebuilt) {
            Node::SetAdd(..) => self.sort_run(rebuilt, true),
            Node::SetRemove(..) => self.sort_run(rebuilt, false),
            _ => rebuilt,
        };
        self.normalize_memo.insert(id, result);
        self.normalize_memo.insert(result, result);
        result
    }

    fn normalize_children(&mut self, id: TermId) -> TermId {
        self.map_children_with(id, &mut |arena, child| arena.normalize_sets_id(child))
    }

    fn sort_run(&mut self, id: TermId, adds: bool) -> TermId {
        // Collect the maximal run of same-kind updates.
        let mut elems: Vec<TermId> = Vec::new();
        let mut base = id;
        while let (&Node::SetAdd(s, v), true) | (&Node::SetRemove(s, v), false) =
            (self.node(base), adds)
        {
            elems.push(v);
            base = s;
        }
        // Canonical order + idempotence (duplicate adds/removes collapse).
        elems.sort_unstable();
        elems.dedup();
        let mut rebuilt = base;
        for v in elems {
            rebuilt = if adds {
                self.intern_node(Node::SetAdd(rebuilt, v))
            } else {
                self.intern_node(Node::SetRemove(rebuilt, v))
            };
        }
        rebuilt
    }
}

fn node_tag(node: &Node) -> u32 {
    match node {
        Node::Var(..) => 0,
        Node::BoolLit(_) => 1,
        Node::IntLit(_) => 2,
        Node::Null => 3,
        Node::EmptySet => 4,
        Node::EmptyMap => 5,
        Node::EmptySeq => 6,
        Node::Not(_) => 7,
        Node::Neg(_) => 8,
        Node::Card(_) => 9,
        Node::MapSize(_) => 10,
        Node::SeqLen(_) => 11,
        Node::And(_) => 12,
        Node::Or(_) => 13,
        Node::Implies(..) => 14,
        Node::Iff(..) => 15,
        Node::Eq(..) => 16,
        Node::Add(..) => 17,
        Node::Sub(..) => 18,
        Node::Lt(..) => 19,
        Node::Le(..) => 20,
        Node::SetAdd(..) => 21,
        Node::SetRemove(..) => 22,
        Node::Member(..) => 23,
        Node::MapRemove(..) => 24,
        Node::MapGet(..) => 25,
        Node::MapHasKey(..) => 26,
        Node::SeqRemoveAt(..) => 27,
        Node::SeqAt(..) => 28,
        Node::SeqIndexOf(..) => 29,
        Node::SeqLastIndexOf(..) => 30,
        Node::SeqContains(..) => 31,
        Node::Ite(..) => 32,
        Node::MapPut(..) => 33,
        Node::SeqInsertAt(..) => 34,
        Node::SeqSetAt(..) => 35,
        Node::ForallInt(..) => 36,
        Node::ExistsInt(..) => 37,
    }
}

fn for_each_child_node(node: &Node, mut f: impl FnMut(TermId)) {
    match node {
        Node::Var(..)
        | Node::BoolLit(_)
        | Node::IntLit(_)
        | Node::Null
        | Node::EmptySet
        | Node::EmptyMap
        | Node::EmptySeq => {}
        Node::Not(a) | Node::Neg(a) | Node::Card(a) | Node::MapSize(a) | Node::SeqLen(a) => f(*a),
        Node::And(cs) | Node::Or(cs) => cs.iter().copied().for_each(f),
        Node::Implies(a, b)
        | Node::Iff(a, b)
        | Node::Eq(a, b)
        | Node::Add(a, b)
        | Node::Sub(a, b)
        | Node::Lt(a, b)
        | Node::Le(a, b)
        | Node::SetAdd(a, b)
        | Node::SetRemove(a, b)
        | Node::Member(a, b)
        | Node::MapRemove(a, b)
        | Node::MapGet(a, b)
        | Node::MapHasKey(a, b)
        | Node::SeqRemoveAt(a, b)
        | Node::SeqAt(a, b)
        | Node::SeqIndexOf(a, b)
        | Node::SeqLastIndexOf(a, b)
        | Node::SeqContains(a, b) => {
            f(*a);
            f(*b);
        }
        Node::Ite(a, b, c)
        | Node::MapPut(a, b, c)
        | Node::SeqInsertAt(a, b, c)
        | Node::SeqSetAt(a, b, c) => {
            f(*a);
            f(*b);
            f(*c);
        }
        Node::ForallInt(_, lo, hi, body) | Node::ExistsInt(_, lo, hi, body) => {
            f(*lo);
            f(*hi);
            f(*body);
        }
    }
}

thread_local! {
    static ARENA: RefCell<TermArena> = RefCell::new(TermArena::new());
}

/// Runs `f` with exclusive access to the calling thread's arena.
///
/// Re-entrant calls are not allowed: `f` must not itself call `with_arena`
/// (directly or through an arena-backed public function like
/// [`crate::simplify()`]).
pub fn with_arena<R>(f: impl FnOnce(&mut TermArena) -> R) -> R {
    ARENA.with(|arena| f(&mut arena.borrow_mut()))
}

/// The arena-independent 128-bit structural hash of a term: equal terms hash
/// equally on every thread. Used as the key of cross-thread caches (e.g. the
/// prover's obligation dedup cache).
pub fn structural_hash(term: &Term) -> u128 {
    with_arena(|arena| {
        let id = arena.intern(term);
        arena.structural_hash(id)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::*;

    #[test]
    fn interning_is_canonical() {
        let mut arena = TermArena::new();
        let t1 = and2(
            member(var_elem("v"), var_set("s")),
            eq(var_elem("v"), var_elem("w")),
        );
        let t2 = and2(
            member(var_elem("v"), var_set("s")),
            eq(var_elem("v"), var_elem("w")),
        );
        let t3 = and2(
            member(var_elem("w"), var_set("s")),
            eq(var_elem("v"), var_elem("w")),
        );
        assert_eq!(arena.intern(&t1), arena.intern(&t2));
        assert_ne!(arena.intern(&t1), arena.intern(&t3));
    }

    #[test]
    fn round_trip_reconstructs_the_term() {
        let mut arena = TermArena::new();
        let t = implies(
            and2(
                member(var_elem("v"), var_set("s")),
                forall_int("i", int(0), seq_len(var_seq("q")), var_bool("p")),
            ),
            or2(eq(var_elem("v"), null()), lt(int(1), card(var_set("s")))),
        );
        let id = arena.intern(&t);
        assert_eq!(arena.to_term(id), t);
    }

    #[test]
    fn metadata_matches_tree_measures() {
        let mut arena = TermArena::new();
        let shared = set_add(var_set("s"), var_elem("v"));
        let t = eq(shared.clone(), shared.clone());
        let id = arena.intern(&t);
        assert_eq!(arena.size_of(id), t.size() as u64);
        assert_eq!(arena.free_vars_map(id), crate::free_vars(&t));
    }

    #[test]
    fn structural_hash_is_arena_independent() {
        let t = iff(
            member(var_elem("x"), set_add(var_set("s"), var_elem("y"))),
            var_bool("r"),
        );
        let mut a = TermArena::new();
        let mut b = TermArena::new();
        // Populate arena `b` differently first so ids diverge.
        b.intern(&card(var_set("zzz")));
        let ia = a.intern(&t);
        let ib = b.intern(&t);
        assert_eq!(a.structural_hash(ia), b.structural_hash(ib));
        let ic = a.intern(&var_bool("r"));
        assert_ne!(a.structural_hash(ia), a.structural_hash(ic));
    }

    #[test]
    fn simplify_id_is_memoized_and_interned() {
        let mut arena = TermArena::new();
        let t = and2(tru(), or2(var_bool("p"), fls()));
        let id = arena.intern(&t);
        let s1 = arena.simplify_id(id);
        let s2 = arena.simplify_id(id);
        assert_eq!(s1, s2);
        assert_eq!(arena.to_term(s1), var_bool("p"));
        // The result is a fixpoint.
        assert_eq!(arena.simplify_id(s1), s1);
    }

    #[test]
    fn substitute_id_respects_binders() {
        let mut arena = TermArena::new();
        let t = exists_int("i", int(0), var_int("n"), eq(var_int("i"), var_int("x")));
        let id = arena.intern(&t);
        let subst: HashMap<Sym, TermId> = [
            (arena.sym("x"), arena.intern(&int(7))),
            (arena.sym("i"), arena.intern(&int(99))),
            (arena.sym("n"), arena.intern(&int(3))),
        ]
        .into_iter()
        .collect();
        let out = arena.substitute_id(id, &subst);
        let expected = exists_int("i", int(0), int(3), eq(var_int("i"), int(7)));
        assert_eq!(arena.to_term(out), expected);
    }

    #[test]
    fn normalize_sets_sorts_and_collapses_runs() {
        let mut arena = TermArena::new();
        let t1 = set_add(set_add(var_set("s"), var_elem("a")), var_elem("b"));
        let t2 = set_add(set_add(var_set("s"), var_elem("b")), var_elem("a"));
        let n1 = {
            let id = arena.intern(&t1);
            arena.normalize_sets_id(id)
        };
        let n2 = {
            let id = arena.intern(&t2);
            arena.normalize_sets_id(id)
        };
        assert_eq!(n1, n2);
        let dup = set_add(set_add(var_set("s"), var_elem("a")), var_elem("a"));
        let nd = {
            let id = arena.intern(&dup);
            arena.normalize_sets_id(id)
        };
        assert_eq!(arena.to_term(nd), set_add(var_set("s"), var_elem("a")));
    }

    #[test]
    fn nnf_id_matches_tree_nnf() {
        let mut arena = TermArena::new();
        let cases = [
            not(implies(var_bool("p"), var_bool("q"))),
            not(iff(var_bool("p"), var_bool("q"))),
            not(exists_int("i", int(0), int(3), var_bool("p"))),
            ite(var_bool("p"), var_bool("q"), var_bool("r")),
        ];
        for t in cases {
            let id = arena.intern(&t);
            let n = arena.nnf_id(id, false);
            assert_eq!(arena.to_term(n), crate::to_nnf(&t), "case {t:?}");
        }
    }
}
