//! Free variables, renaming, and capture-avoiding substitution.

use std::collections::{BTreeMap, BTreeSet};

use crate::sort::Sort;
use crate::term::Term;

/// Returns the free variables of `term` together with their sorts, in name
/// order.
///
/// Bound quantifier variables are not reported (the quantifier bounds are
/// evaluated outside the binder and are therefore free).
///
/// The result comes from the calling thread's hash-consed arena, where every
/// interned node caches its free-variable list — asking again for any
/// already-seen term (or a term sharing sub-DAGs with one) is cheap.
pub fn free_vars(term: &Term) -> BTreeMap<String, Sort> {
    crate::arena::with_arena(|arena| {
        let id = arena.intern(term);
        arena.free_vars_map(id)
    })
}

/// Tree-walking free-variable collection, kept as the reference
/// implementation for the arena's cached lists (compared by property tests).
pub fn free_vars_uncached(term: &Term) -> BTreeMap<String, Sort> {
    let mut acc = BTreeMap::new();
    collect_free(term, &mut BTreeSet::new(), &mut acc);
    acc
}

fn collect_free(term: &Term, bound: &mut BTreeSet<String>, acc: &mut BTreeMap<String, Sort>) {
    match term {
        Term::Var(v) => {
            if !bound.contains(&v.name) {
                acc.insert(v.name.clone(), v.sort);
            }
        }
        Term::ForallInt { var, lo, hi, body } | Term::ExistsInt { var, lo, hi, body } => {
            collect_free(lo, bound, acc);
            collect_free(hi, bound, acc);
            let fresh = bound.insert(var.clone());
            collect_free(body, bound, acc);
            if fresh {
                bound.remove(var);
            }
        }
        other => {
            for c in other.children() {
                collect_free(c, bound, acc);
            }
        }
    }
}

/// Substitutes terms for free variables.
///
/// Every free occurrence of a variable named `n` with `subst[n]` defined is
/// replaced by `subst[n]`. Quantifier-bound variables shadow entries of the
/// substitution. The substitution is *not* capture-avoiding in general, but
/// the only binders in the logic are integer quantifier variables, which by
/// convention are fresh names (`__q0`, `__q1`, …) distinct from all
/// specification variables; [`rename_vars`] can be used first when this
/// convention does not hold.
///
/// The walk runs on the calling thread's hash-consed arena (see
/// [`crate::arena::TermArena::substitute_id`]): shared sub-DAGs are rewritten
/// once per call, and sub-terms whose cached free variables are disjoint from
/// the substitution domain are skipped entirely.
pub fn substitute(term: &Term, subst: &BTreeMap<String, Term>) -> Term {
    if subst.is_empty() {
        return term.clone();
    }
    crate::arena::with_arena(|arena| {
        let id = arena.intern(term);
        let map = subst
            .iter()
            .map(|(name, replacement)| (arena.sym(name), arena.intern(replacement)))
            .collect();
        let out = arena.substitute_id(id, &map);
        arena.to_term(out)
    })
}

/// Renames free variables according to `renaming` (old name → new name).
///
/// The sort of each variable is preserved. This is how operation
/// specifications (written in terms of formal parameter and state names) are
/// instantiated with the actual names used by a testing method.
pub fn rename_vars(term: &Term, renaming: &BTreeMap<String, String>) -> Term {
    rename_rec(term, renaming)
}

fn rename_rec(term: &Term, renaming: &BTreeMap<String, String>) -> Term {
    match term {
        Term::Var(v) => {
            if let Some(new_name) = renaming.get(&v.name) {
                Term::var(new_name.clone(), v.sort)
            } else {
                term.clone()
            }
        }
        Term::ForallInt { var, lo, hi, body } | Term::ExistsInt { var, lo, hi, body } => {
            let lo2 = rename_rec(lo, renaming);
            let hi2 = rename_rec(hi, renaming);
            let body2 = if renaming.contains_key(var) {
                let mut narrowed = renaming.clone();
                narrowed.remove(var);
                rename_rec(body, &narrowed)
            } else {
                rename_rec(body, renaming)
            };
            match term {
                Term::ForallInt { .. } => Term::ForallInt {
                    var: var.clone(),
                    lo: Box::new(lo2),
                    hi: Box::new(hi2),
                    body: Box::new(body2),
                },
                _ => Term::ExistsInt {
                    var: var.clone(),
                    lo: Box::new(lo2),
                    hi: Box::new(hi2),
                    body: Box::new(body2),
                },
            }
        }
        other => other.map_children(|c| rename_rec(c, renaming)),
    }
}

/// Builds a substitution map from `(name, term)` pairs.
pub fn subst_map<I, S>(pairs: I) -> BTreeMap<String, Term>
where
    I: IntoIterator<Item = (S, Term)>,
    S: Into<String>,
{
    pairs.into_iter().map(|(k, v)| (k.into(), v)).collect()
}

/// Builds a renaming map from `(old, new)` pairs.
pub fn rename_map<I, A, B>(pairs: I) -> BTreeMap<String, String>
where
    I: IntoIterator<Item = (A, B)>,
    A: Into<String>,
    B: Into<String>,
{
    pairs
        .into_iter()
        .map(|(k, v)| (k.into(), v.into()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::*;

    #[test]
    fn free_vars_reports_names_and_sorts() {
        let t = and2(
            member(var_elem("v1"), var_set("s")),
            lt(var_int("i"), card(var_set("s"))),
        );
        let fv = free_vars(&t);
        assert_eq!(fv.len(), 3);
        assert_eq!(fv["v1"], Sort::Elem);
        assert_eq!(fv["s"], Sort::Set);
        assert_eq!(fv["i"], Sort::Int);
    }

    #[test]
    fn bound_variables_are_not_free() {
        let t = exists_int(
            "i",
            int(0),
            seq_len(var_seq("q")),
            eq(seq_at(var_seq("q"), var_int("i")), var_elem("v")),
        );
        let fv = free_vars(&t);
        assert!(fv.contains_key("q"));
        assert!(fv.contains_key("v"));
        assert!(!fv.contains_key("i"));
    }

    #[test]
    fn substitute_replaces_free_occurrences_only() {
        let t = exists_int("i", int(0), var_int("n"), eq(var_int("i"), var_int("x")));
        let s = subst_map([("x", int(7)), ("i", int(99)), ("n", int(3))]);
        let t2 = substitute(&t, &s);
        // the bound i is untouched, x and n are replaced
        match &t2 {
            Term::ExistsInt { hi, body, .. } => {
                assert_eq!(**hi, int(3));
                assert_eq!(**body, eq(var_int("i"), int(7)));
            }
            _ => panic!("expected quantifier"),
        }
    }

    #[test]
    fn rename_preserves_sorts() {
        let t = member(var_elem("v"), var_set("s"));
        let r = rename_map([("v", "v1"), ("s", "sa_contents")]);
        let t2 = rename_vars(&t, &r);
        let fv = free_vars(&t2);
        assert_eq!(fv["v1"], Sort::Elem);
        assert_eq!(fv["sa_contents"], Sort::Set);
        assert!(!fv.contains_key("v"));
    }

    #[test]
    fn rename_respects_binder_shadowing() {
        let t = forall_int("i", int(0), int(3), eq(var_int("i"), var_int("j")));
        let r = rename_map([("i", "k"), ("j", "j2")]);
        let t2 = rename_vars(&t, &r);
        match &t2 {
            Term::ForallInt { var, body, .. } => {
                assert_eq!(var, "i");
                assert_eq!(**body, eq(var_int("i"), var_int("j2")));
            }
            _ => panic!("expected quantifier"),
        }
    }
}
