//! Specification logic for the `semcommute` verification system.
//!
//! This crate provides the typed first-order specification language in which
//! data structure interfaces, commutativity conditions, and inverse operations
//! are expressed. It plays the role of the Jahob specification language in the
//! original paper ("Verification of Semantic Commutativity Conditions and
//! Inverse Operations on Linked Data Structures", PLDI 2011): operation
//! preconditions and postconditions, the 765 commutativity conditions, and the
//! proof obligations generated from the testing-method templates are all terms
//! of this logic.
//!
//! The logic is first order and multi-sorted. Sorts ([`Sort`]) cover the
//! abstract states of every data structure in the paper:
//!
//! * `Bool`, `Int` — booleans and mathematical integers,
//! * `Elem` — opaque object identities (with a distinguished `null`),
//! * `Set` — finite sets of non-null elements (ListSet / HashSet contents),
//! * `Map` — finite partial maps from elements to elements (AssociationList /
//!   HashTable contents),
//! * `Seq` — finite sequences of elements (ArrayList contents).
//!
//! Terms ([`Term`]) include the update and query algebra used by the
//! specifications (`s ∪ {v}`, `s \ {v}`, `v ∈ s`, `|s|`, `m[k := v]`,
//! `m.get(k)`, `insert_at`, `index_of`, …), boolean connectives, linear integer
//! arithmetic, polymorphic equality, and bounded integer quantifiers (used by
//! the ArrayList `index_of` / `last_index_of` specifications).
//!
//! Concrete semantics are given by [`Value`] and [`eval::eval`]: a [`Model`]
//! assigns values to free variables and a term evaluates to a value. The
//! prover crate decides validity of obligations by searching for
//! counter-models with this evaluator.
//!
//! # Example
//!
//! ```
//! use semcommute_logic::{build::*, Model, Value, ElemId, eval};
//!
//! // v1 != v2  |  v1 in s     (the between condition for contains(v1)/add(v2))
//! let cond = or2(
//!     not(eq(var_elem("v1"), var_elem("v2"))),
//!     member(var_elem("v1"), var_set("s")),
//! );
//! let mut m = Model::new();
//! m.insert("v1", Value::elem(1));
//! m.insert("v2", Value::elem(2));
//! m.insert("s", Value::set_of([ElemId(7)]));
//! assert_eq!(eval::eval_bool(&cond, &m).unwrap(), true);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod build;
pub mod eval;
pub mod model;
pub mod nnf;
pub mod pretty;
pub mod pvalue;
pub mod simplify;
pub mod sort;
pub mod subst;
pub mod term;
pub mod ty;
pub mod value;

pub use arena::{structural_hash, with_arena, Sym, TermArena, TermId};
pub use eval::{eval, eval_bool, EvalError};
pub use model::Model;
pub use nnf::to_nnf;
pub use pvalue::{PMap, PSeq, PSet};
pub use simplify::simplify;
pub use sort::Sort;
pub use subst::{free_vars, rename_vars, substitute};
pub use term::{Term, Var};
pub use ty::{sort_of, SortError};
pub use value::{ElemId, Value, NULL_ELEM};
