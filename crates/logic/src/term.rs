//! Terms of the specification logic.

use crate::sort::Sort;

/// A typed variable of the specification logic.
///
/// Variables carry their sort so that terms are self-describing; the sort
/// checker ([`crate::ty::sort_of`]) only verifies that all occurrences of the
/// same name agree.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var {
    /// The variable name (e.g. `"v1"`, `"sa_contents"`).
    pub name: String,
    /// The sort of the variable.
    pub sort: Sort,
}

impl Var {
    /// Creates a new variable with the given name and sort.
    pub fn new(name: impl Into<String>, sort: Sort) -> Var {
        Var {
            name: name.into(),
            sort,
        }
    }
}

/// A term of the specification logic.
///
/// Terms cover boolean connectives, linear integer arithmetic, polymorphic
/// equality, and the query/update algebra of the three abstract container
/// sorts (sets, maps, sequences). Partial operations are *totalized* so that
/// every term evaluates to a value under every model (see [`crate::eval()`]):
///
/// * `MapGet` returns `null` for absent keys,
/// * `SeqAt` returns `null` for out-of-range indices,
/// * `SeqIndexOf` / `SeqLastIndexOf` return `-1` when the element is absent,
/// * `SeqInsertAt` clamps the index into `[0, len]`, and `SeqRemoveAt` /
///   `SeqSetAt` leave the sequence unchanged for out-of-range indices.
///
/// Proof obligations always carry the operation preconditions as hypotheses,
/// so these totalizations never influence a verdict about specified behaviour;
/// they only make the evaluator total, which the finite-model prover relies
/// on.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Term {
    /// A variable occurrence.
    Var(Var),
    /// A boolean literal.
    BoolLit(bool),
    /// An integer literal.
    IntLit(i64),
    /// The `null` object literal.
    Null,

    /// Logical negation.
    Not(Box<Term>),
    /// N-ary conjunction. `And(vec![])` is `true`.
    And(Vec<Term>),
    /// N-ary disjunction. `Or(vec![])` is `false`.
    Or(Vec<Term>),
    /// Implication.
    Implies(Box<Term>, Box<Term>),
    /// Bi-implication.
    Iff(Box<Term>, Box<Term>),
    /// If-then-else over terms of any (equal) sort.
    Ite(Box<Term>, Box<Term>, Box<Term>),
    /// Polymorphic equality between two terms of the same sort.
    Eq(Box<Term>, Box<Term>),

    /// Integer addition.
    Add(Box<Term>, Box<Term>),
    /// Integer subtraction.
    Sub(Box<Term>, Box<Term>),
    /// Integer negation.
    Neg(Box<Term>),
    /// Strict less-than on integers.
    Lt(Box<Term>, Box<Term>),
    /// Less-than-or-equal on integers.
    Le(Box<Term>, Box<Term>),

    /// The empty set.
    EmptySet,
    /// `set ∪ {elem}`.
    SetAdd(Box<Term>, Box<Term>),
    /// `set \ {elem}`.
    SetRemove(Box<Term>, Box<Term>),
    /// `elem ∈ set`.
    Member(Box<Term>, Box<Term>),
    /// `|set|`.
    Card(Box<Term>),

    /// The empty map.
    EmptyMap,
    /// `map[key := value]`.
    MapPut(Box<Term>, Box<Term>, Box<Term>),
    /// `map` with `key` unmapped.
    MapRemove(Box<Term>, Box<Term>),
    /// The value `map` associates with `key`, or `null` if `key` is unmapped.
    MapGet(Box<Term>, Box<Term>),
    /// `true` iff `key` is mapped by `map`.
    MapHasKey(Box<Term>, Box<Term>),
    /// The number of mapped keys.
    MapSize(Box<Term>),

    /// The empty sequence.
    EmptySeq,
    /// `seq` with `elem` inserted at `idx` (everything at `idx` and above
    /// shifted up by one).
    SeqInsertAt(Box<Term>, Box<Term>, Box<Term>),
    /// `seq` with the element at `idx` removed (everything above shifted
    /// down by one).
    SeqRemoveAt(Box<Term>, Box<Term>),
    /// `seq` with the element at `idx` replaced by `elem`.
    SeqSetAt(Box<Term>, Box<Term>, Box<Term>),
    /// The element of `seq` at `idx`, or `null` when out of range.
    SeqAt(Box<Term>, Box<Term>),
    /// The length of `seq`.
    SeqLen(Box<Term>),
    /// The index of the first occurrence of `elem` in `seq`, or `-1`.
    SeqIndexOf(Box<Term>, Box<Term>),
    /// The index of the last occurrence of `elem` in `seq`, or `-1`.
    SeqLastIndexOf(Box<Term>, Box<Term>),
    /// `true` iff `elem` occurs in `seq`.
    SeqContains(Box<Term>, Box<Term>),

    /// Bounded universal quantification over integers:
    /// `∀ var. lo ≤ var < hi → body`.
    ForallInt {
        /// The bound variable name (sort `Int`).
        var: String,
        /// Inclusive lower bound.
        lo: Box<Term>,
        /// Exclusive upper bound.
        hi: Box<Term>,
        /// The body, in which `var` may occur free.
        body: Box<Term>,
    },
    /// Bounded existential quantification over integers:
    /// `∃ var. lo ≤ var < hi ∧ body`.
    ExistsInt {
        /// The bound variable name (sort `Int`).
        var: String,
        /// Inclusive lower bound.
        lo: Box<Term>,
        /// Exclusive upper bound.
        hi: Box<Term>,
        /// The body, in which `var` may occur free.
        body: Box<Term>,
    },
}

impl Term {
    /// Creates a variable term.
    pub fn var(name: impl Into<String>, sort: Sort) -> Term {
        Term::Var(Var::new(name, sort))
    }

    /// Returns `true` if this term is the literal `true`.
    pub fn is_true(&self) -> bool {
        matches!(self, Term::BoolLit(true)) || matches!(self, Term::And(cs) if cs.is_empty())
    }

    /// Returns `true` if this term is the literal `false`.
    pub fn is_false(&self) -> bool {
        matches!(self, Term::BoolLit(false)) || matches!(self, Term::Or(cs) if cs.is_empty())
    }

    /// Returns references to the immediate sub-terms of this term.
    ///
    /// Quantifier bounds and bodies are included; the bound variable itself is
    /// not a sub-term.
    pub fn children(&self) -> Vec<&Term> {
        use Term::*;
        match self {
            Var(_) | BoolLit(_) | IntLit(_) | Null | EmptySet | EmptyMap | EmptySeq => vec![],
            Not(a) | Neg(a) | Card(a) | MapSize(a) | SeqLen(a) => vec![a],
            And(cs) | Or(cs) => cs.iter().collect(),
            Implies(a, b)
            | Iff(a, b)
            | Eq(a, b)
            | Add(a, b)
            | Sub(a, b)
            | Lt(a, b)
            | Le(a, b)
            | SetAdd(a, b)
            | SetRemove(a, b)
            | Member(a, b)
            | MapRemove(a, b)
            | MapGet(a, b)
            | MapHasKey(a, b)
            | SeqRemoveAt(a, b)
            | SeqAt(a, b)
            | SeqIndexOf(a, b)
            | SeqLastIndexOf(a, b)
            | SeqContains(a, b) => vec![a, b],
            Ite(a, b, c) | MapPut(a, b, c) | SeqInsertAt(a, b, c) | SeqSetAt(a, b, c) => {
                vec![a, b, c]
            }
            ForallInt { lo, hi, body, .. } | ExistsInt { lo, hi, body, .. } => vec![lo, hi, body],
        }
    }

    /// Calls `f` on every immediate sub-term, in the same order as
    /// [`Term::children`], without allocating.
    ///
    /// Quantifier bounds and bodies are included; the bound variable itself is
    /// not a sub-term.
    pub fn for_each_child<'a>(&'a self, f: &mut impl FnMut(&'a Term)) {
        use Term::*;
        match self {
            Var(_) | BoolLit(_) | IntLit(_) | Null | EmptySet | EmptyMap | EmptySeq => {}
            Not(a) | Neg(a) | Card(a) | MapSize(a) | SeqLen(a) => f(a),
            And(cs) | Or(cs) => cs.iter().for_each(f),
            Implies(a, b)
            | Iff(a, b)
            | Eq(a, b)
            | Add(a, b)
            | Sub(a, b)
            | Lt(a, b)
            | Le(a, b)
            | SetAdd(a, b)
            | SetRemove(a, b)
            | Member(a, b)
            | MapRemove(a, b)
            | MapGet(a, b)
            | MapHasKey(a, b)
            | SeqRemoveAt(a, b)
            | SeqAt(a, b)
            | SeqIndexOf(a, b)
            | SeqLastIndexOf(a, b)
            | SeqContains(a, b) => {
                f(a);
                f(b);
            }
            Ite(a, b, c) | MapPut(a, b, c) | SeqInsertAt(a, b, c) | SeqSetAt(a, b, c) => {
                f(a);
                f(b);
                f(c);
            }
            ForallInt { lo, hi, body, .. } | ExistsInt { lo, hi, body, .. } => {
                f(lo);
                f(hi);
                f(body);
            }
        }
    }

    /// Rebuilds this term, applying `f` to every immediate sub-term.
    ///
    /// The structure (variant, bound variable names) is preserved. This is the
    /// workhorse used by substitution, normalization, and simplification to
    /// avoid repeating the full variant match.
    pub fn map_children(&self, mut f: impl FnMut(&Term) -> Term) -> Term {
        use Term::*;
        let b = |t: &Term, f: &mut dyn FnMut(&Term) -> Term| Box::new(f(t));
        match self {
            Var(_) | BoolLit(_) | IntLit(_) | Null | EmptySet | EmptyMap | EmptySeq => self.clone(),
            Not(a) => Not(b(a, &mut f)),
            Neg(a) => Neg(b(a, &mut f)),
            Card(a) => Card(b(a, &mut f)),
            MapSize(a) => MapSize(b(a, &mut f)),
            SeqLen(a) => SeqLen(b(a, &mut f)),
            And(cs) => And(cs.iter().map(&mut f).collect()),
            Or(cs) => Or(cs.iter().map(&mut f).collect()),
            Implies(x, y) => Implies(b(x, &mut f), b(y, &mut f)),
            Iff(x, y) => Iff(b(x, &mut f), b(y, &mut f)),
            Eq(x, y) => Eq(b(x, &mut f), b(y, &mut f)),
            Add(x, y) => Add(b(x, &mut f), b(y, &mut f)),
            Sub(x, y) => Sub(b(x, &mut f), b(y, &mut f)),
            Lt(x, y) => Lt(b(x, &mut f), b(y, &mut f)),
            Le(x, y) => Le(b(x, &mut f), b(y, &mut f)),
            SetAdd(x, y) => SetAdd(b(x, &mut f), b(y, &mut f)),
            SetRemove(x, y) => SetRemove(b(x, &mut f), b(y, &mut f)),
            Member(x, y) => Member(b(x, &mut f), b(y, &mut f)),
            MapRemove(x, y) => MapRemove(b(x, &mut f), b(y, &mut f)),
            MapGet(x, y) => MapGet(b(x, &mut f), b(y, &mut f)),
            MapHasKey(x, y) => MapHasKey(b(x, &mut f), b(y, &mut f)),
            SeqRemoveAt(x, y) => SeqRemoveAt(b(x, &mut f), b(y, &mut f)),
            SeqAt(x, y) => SeqAt(b(x, &mut f), b(y, &mut f)),
            SeqIndexOf(x, y) => SeqIndexOf(b(x, &mut f), b(y, &mut f)),
            SeqLastIndexOf(x, y) => SeqLastIndexOf(b(x, &mut f), b(y, &mut f)),
            SeqContains(x, y) => SeqContains(b(x, &mut f), b(y, &mut f)),
            Ite(x, y, z) => Ite(b(x, &mut f), b(y, &mut f), b(z, &mut f)),
            MapPut(x, y, z) => MapPut(b(x, &mut f), b(y, &mut f), b(z, &mut f)),
            SeqInsertAt(x, y, z) => SeqInsertAt(b(x, &mut f), b(y, &mut f), b(z, &mut f)),
            SeqSetAt(x, y, z) => SeqSetAt(b(x, &mut f), b(y, &mut f), b(z, &mut f)),
            ForallInt { var, lo, hi, body } => ForallInt {
                var: var.clone(),
                lo: b(lo, &mut f),
                hi: b(hi, &mut f),
                body: b(body, &mut f),
            },
            ExistsInt { var, lo, hi, body } => ExistsInt {
                var: var.clone(),
                lo: b(lo, &mut f),
                hi: b(hi, &mut f),
                body: b(body, &mut f),
            },
        }
    }

    /// Returns the number of nodes in this term (a rough size/complexity
    /// measure, used in reports and to order prover work).
    ///
    /// The traversal is iterative with a single explicit stack, so counting a
    /// term never allocates a per-node `Vec` (unlike [`Term::children`]) and
    /// cannot overflow the call stack on deep terms. Arena-interned terms get
    /// the same measure for free via [`crate::arena::TermArena::size_of`].
    pub fn size(&self) -> usize {
        let mut count = 0usize;
        let mut stack: Vec<&Term> = vec![self];
        while let Some(t) = stack.pop() {
            count += 1;
            t.for_each_child(&mut |c| stack.push(c));
        }
        count
    }

    /// Returns the name of the bound variable if this term is a quantifier.
    pub fn binder(&self) -> Option<&str> {
        match self {
            Term::ForallInt { var, .. } | Term::ExistsInt { var, .. } => Some(var),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::*;

    #[test]
    fn true_false_recognition() {
        assert!(Term::BoolLit(true).is_true());
        assert!(Term::And(vec![]).is_true());
        assert!(Term::BoolLit(false).is_false());
        assert!(Term::Or(vec![]).is_false());
        assert!(!Term::BoolLit(true).is_false());
    }

    #[test]
    fn children_and_map_children_round_trip() {
        let t = and2(
            eq(var_elem("v1"), var_elem("v2")),
            member(var_elem("v1"), set_add(var_set("s"), var_elem("v2"))),
        );
        assert_eq!(t.children().len(), 2);
        let copy = t.map_children(|c| c.clone());
        assert_eq!(copy, t);
    }

    #[test]
    fn size_counts_nodes() {
        let v = var_elem("v");
        assert_eq!(v.size(), 1);
        let t = eq(v.clone(), v);
        assert_eq!(t.size(), 3);
    }

    #[test]
    fn binder_only_on_quantifiers() {
        let q = exists_int("i", int(0), seq_len(var_seq("s")), tru());
        assert_eq!(q.binder(), Some("i"));
        assert_eq!(tru().binder(), None);
    }

    #[test]
    fn map_children_preserves_quantifier_binder() {
        let q = forall_int("i", int(0), int(5), eq(var_int("i"), int(3)));
        let q2 = q.map_children(|c| c.clone());
        assert_eq!(q, q2);
        assert_eq!(q2.binder(), Some("i"));
    }
}
