//! Property-based tests of the hash-consed term arena: interning is
//! canonical (same id iff structurally equal), metadata matches the tree
//! measures, round trips are lossless, and the arena-backed `simplify` /
//! `nnf` / `substitute` passes agree with direct evaluation under random
//! models — i.e. arena-interned terms behave exactly like the boxed baseline.

use std::collections::BTreeMap;

use proptest::prelude::*;

use semcommute_logic::build::*;
use semcommute_logic::subst::{free_vars_uncached, subst_map};
use semcommute_logic::{
    eval_bool, free_vars, simplify, substitute, to_nnf, ElemId, Model, Term, TermArena, Value,
};

/// Small boolean formulas over booleans, elements, a set, and a sequence —
/// wide enough to cover every connective and a few container atoms.
fn formula(depth: u32) -> BoxedStrategy<Term> {
    let leaf = prop_oneof![
        Just(tru()),
        Just(fls()),
        Just(var_bool("p")),
        Just(var_bool("q")),
        Just(member(var_elem("x"), var_set("s"))),
        Just(member(var_elem("y"), set_add(var_set("s"), var_elem("x")))),
        Just(eq(var_elem("x"), var_elem("y"))),
        Just(le(card(var_set("s")), int(2))),
        Just(lt(seq_len(var_seq("w")), int(3))),
        Just(seq_contains(var_seq("w"), var_elem("x"))),
        Just(exists_int(
            "i",
            int(0),
            seq_len(var_seq("w")),
            eq(seq_at(var_seq("w"), var_int("i")), var_elem("x"))
        )),
    ]
    .boxed();
    if depth == 0 {
        return leaf;
    }
    let inner = formula(depth - 1);
    prop_oneof![
        leaf,
        inner.clone().prop_map(not),
        (formula(depth - 1), formula(depth - 1)).prop_map(|(a, b)| and2(a, b)),
        (formula(depth - 1), formula(depth - 1)).prop_map(|(a, b)| or2(a, b)),
        (formula(depth - 1), formula(depth - 1)).prop_map(|(a, b)| implies(a, b)),
        (formula(depth - 1), formula(depth - 1)).prop_map(|(a, b)| iff(a, b)),
        (inner.clone(), formula(depth - 1), formula(depth - 1)).prop_map(|(c, t, e)| ite(c, t, e)),
    ]
    .boxed()
}

prop_compose! {
    fn model()(
        p in proptest::bool::ANY,
        q in proptest::bool::ANY,
        x in 1u32..4,
        y in 1u32..4,
        s in proptest::collection::btree_set(1u32..4, 0..3),
        w in proptest::collection::vec(1u32..4, 0..4),
    ) -> Model {
        Model::from_bindings([
            ("p", Value::Bool(p)),
            ("q", Value::Bool(q)),
            ("x", Value::elem(x)),
            ("y", Value::elem(y)),
            ("s", Value::Set(s.into_iter().map(ElemId).collect())),
            ("w", Value::Seq(w.into_iter().map(ElemId).collect())),
        ])
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// intern(t) == intern(t') iff t == t', and the round trip is lossless.
    #[test]
    fn interning_is_canonical(t1 in formula(3), t2 in formula(3)) {
        let mut arena = TermArena::new();
        let id1 = arena.intern(&t1);
        let id2 = arena.intern(&t2);
        prop_assert_eq!(id1 == id2, t1 == t2, "ids {:?}/{:?} for {} vs {}", id1, id2, t1, t2);
        prop_assert_eq!(arena.to_term(id1), t1);
        prop_assert_eq!(arena.to_term(id2), t2);
    }

    /// Cached metadata (size, free variables, structural hash) agrees with
    /// the tree-walking reference implementations.
    #[test]
    fn metadata_matches_tree_walks(t in formula(3)) {
        let mut arena = TermArena::new();
        let id = arena.intern(&t);
        prop_assert_eq!(arena.size_of(id), t.size() as u64);
        prop_assert_eq!(arena.free_vars_map(id), free_vars_uncached(&t));
        prop_assert_eq!(free_vars(&t), free_vars_uncached(&t));
        // Structural hashes are stable across arenas.
        let mut other = TermArena::new();
        other.intern(&var_bool("prepopulate"));
        let other_id = other.intern(&t);
        prop_assert_eq!(arena.structural_hash(id), other.structural_hash(other_id));
    }

    /// Arena-backed simplification evaluates identically to the original
    /// term under random models (the boxed-baseline soundness property).
    #[test]
    fn arena_simplify_preserves_evaluation(t in formula(3), m in model()) {
        let original = eval_bool(&t, &m).unwrap();
        let simplified = simplify(&t);
        prop_assert_eq!(original, eval_bool(&simplified, &m).unwrap(),
            "simplify changed the meaning of {}", t);
        // Simplification is idempotent on its own output.
        prop_assert_eq!(simplify(&simplified), simplified);
    }

    /// Arena-backed NNF conversion is semantics-preserving and in NNF.
    #[test]
    fn arena_nnf_preserves_evaluation(t in formula(3), m in model()) {
        let n = to_nnf(&t);
        prop_assert!(semcommute_logic::nnf::is_nnf(&n));
        prop_assert_eq!(eval_bool(&t, &m).unwrap(), eval_bool(&n, &m).unwrap());
    }

    /// Arena-backed substitution behaves like textual replacement: composing
    /// substitution with evaluation equals evaluating under the extended
    /// model.
    #[test]
    fn arena_substitute_agrees_with_model_extension(t in formula(3), m in model()) {
        // Replace x by y and p by a formula.
        let subst = subst_map([
            ("x", var_elem("y")),
            ("p", member(var_elem("y"), var_set("s"))),
        ]);
        let replaced = substitute(&t, &subst);
        // Reference: evaluate the substituted values first, then bind them.
        let x_val = m.get("y").unwrap().clone();
        let p_val = eval_bool(&member(var_elem("y"), var_set("s")), &m).unwrap();
        let mut extended = m.clone();
        extended.insert("x", x_val);
        extended.insert("p", Value::Bool(p_val));
        prop_assert_eq!(
            eval_bool(&replaced, &m).unwrap(),
            eval_bool(&t, &extended).unwrap(),
            "substitution changed the meaning of {}", t
        );
    }

    /// The free variables of a substituted term never include substituted
    /// names (all our binders use distinct bound names).
    #[test]
    fn substitution_eliminates_the_domain(t in formula(3)) {
        let subst: BTreeMap<String, Term> = subst_map([("p", tru()), ("x", var_elem("y"))]);
        let replaced = substitute(&t, &subst);
        let fv = free_vars(&replaced);
        prop_assert!(!fv.contains_key("p"), "p still free in {}", replaced);
        prop_assert!(!fv.contains_key("x"), "x still free in {}", replaced);
    }
}
