//! Property-based tests of the specification logic: simplification and
//! negation-normal-form conversion are semantics-preserving, and evaluation
//! agrees with the obvious set/map/sequence algebra.

use proptest::prelude::*;

use semcommute_logic::build::*;
use semcommute_logic::{eval, eval_bool, simplify, to_nnf, ElemId, Model, Term, Value};

/// A strategy for small boolean formulas over three boolean variables, two
/// element variables, and one set variable.
fn formula(depth: u32) -> BoxedStrategy<Term> {
    let leaf = prop_oneof![
        Just(tru()),
        Just(fls()),
        Just(var_bool("p")),
        Just(var_bool("q")),
        Just(member(var_elem("x"), var_set("s"))),
        Just(member(var_elem("y"), var_set("s"))),
        Just(eq(var_elem("x"), var_elem("y"))),
        Just(eq(card(var_set("s")), int(1))),
        Just(lt(card(var_set("s")), int(2))),
    ]
    .boxed();
    if depth == 0 {
        return leaf;
    }
    let inner = formula(depth - 1);
    prop_oneof![
        leaf,
        inner.clone().prop_map(not),
        (formula(depth - 1), formula(depth - 1)).prop_map(|(a, b)| and2(a, b)),
        (formula(depth - 1), formula(depth - 1)).prop_map(|(a, b)| or2(a, b)),
        (formula(depth - 1), formula(depth - 1)).prop_map(|(a, b)| implies(a, b)),
        (formula(depth - 1), formula(depth - 1)).prop_map(|(a, b)| iff(a, b)),
        (inner.clone(), formula(depth - 1), formula(depth - 1)).prop_map(|(c, t, e)| ite(c, t, e)),
    ]
    .boxed()
}

prop_compose! {
    fn model()(
        p in proptest::bool::ANY,
        q in proptest::bool::ANY,
        x in 1u32..4,
        y in 1u32..4,
        s in proptest::collection::btree_set(1u32..4, 0..3),
    ) -> Model {
        Model::from_bindings([
            ("p", Value::Bool(p)),
            ("q", Value::Bool(q)),
            ("x", Value::elem(x)),
            ("y", Value::elem(y)),
            ("s", Value::Set(s.into_iter().map(ElemId).collect())),
        ])
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn simplification_preserves_evaluation(t in formula(3), m in model()) {
        let original = eval_bool(&t, &m).unwrap();
        let simplified = eval_bool(&simplify(&t), &m).unwrap();
        prop_assert_eq!(original, simplified, "simplify changed the meaning of {}", t);
    }

    #[test]
    fn nnf_preserves_evaluation(t in formula(3), m in model()) {
        let original = eval_bool(&t, &m).unwrap();
        let nnf = to_nnf(&t);
        prop_assert!(semcommute_logic::nnf::is_nnf(&nnf));
        prop_assert_eq!(original, eval_bool(&nnf, &m).unwrap());
    }

    #[test]
    fn set_add_then_remove_is_remove(
        s in proptest::collection::btree_set(1u32..6, 0..5),
        v in 1u32..6,
        m_extra in 1u32..6,
    ) {
        // ((s ∪ {v}) \ {v}) = s \ {v}, and membership of any other element is
        // unchanged — the algebraic facts the set specifications rely on.
        let model = Model::from_bindings([
            ("s", Value::Set(s.into_iter().map(ElemId).collect())),
            ("v", Value::elem(v)),
            ("w", Value::elem(m_extra)),
        ]);
        let lhs = set_remove(set_add(var_set("s"), var_elem("v")), var_elem("v"));
        let rhs = set_remove(var_set("s"), var_elem("v"));
        prop_assert_eq!(eval(&lhs, &model).unwrap(), eval(&rhs, &model).unwrap());
        if m_extra != v {
            let unchanged = iff(
                member(var_elem("w"), lhs),
                member(var_elem("w"), var_set("s")),
            );
            prop_assert!(eval_bool(&unchanged, &model).unwrap());
        }
    }

    #[test]
    fn sequence_insert_then_remove_is_identity(
        items in proptest::collection::vec(1u32..5, 0..6),
        i in 0usize..7,
        v in 1u32..5,
    ) {
        // removeAt(insertAt(q, i, v), i) = q whenever i ≤ len(q).
        prop_assume!(i <= items.len());
        let model = Model::from_bindings([
            ("q", Value::Seq(items.iter().copied().map(ElemId).collect())),
            ("v", Value::elem(v)),
        ]);
        let round_trip = seq_remove_at(
            seq_insert_at(var_seq("q"), int(i as i64), var_elem("v")),
            int(i as i64),
        );
        prop_assert_eq!(
            eval(&round_trip, &model).unwrap(),
            eval(&var_seq("q"), &model).unwrap()
        );
    }

    #[test]
    fn map_put_get_retrieves_the_value(
        pairs in proptest::collection::btree_map(1u32..5, 10u32..15, 0..4),
        k in 1u32..5,
        v in 10u32..15,
    ) {
        let model = Model::from_bindings([
            ("m", Value::Map(pairs.into_iter().map(|(a, b)| (ElemId(a), ElemId(b))).collect())),
            ("k", Value::elem(k)),
            ("v", Value::elem(v)),
        ]);
        let got = map_get(map_put(var_map("m"), var_elem("k"), var_elem("v")), var_elem("k"));
        prop_assert_eq!(eval(&got, &model).unwrap(), Value::elem(v));
    }
}
