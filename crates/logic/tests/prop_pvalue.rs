//! Property-based tests of the persistent copy-on-write collection values:
//! a [`PSet`] / [`PMap`] / [`PSeq`] driven through an arbitrary update
//! sequence is observationally identical to the eager `BTreeSet` /
//! `BTreeMap` / `Vec` driven through the same sequence (contents, iteration
//! order, equality, ordering, hashing), and a handle that was shared and
//! then mutated never aliases its siblings.

use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, BTreeSet};
use std::hash::{Hash, Hasher};

use proptest::prelude::*;

use semcommute_logic::{ElemId, PMap, PSeq, PSet, Value};

fn hash_of<T: Hash>(t: &T) -> u64 {
    let mut h = DefaultHasher::new();
    t.hash(&mut h);
    h.finish()
}

/// One update against a set-shaped value.
#[derive(Debug, Clone)]
enum SetOp {
    Insert(u32),
    Remove(u32),
}

fn set_ops() -> impl Strategy<Value = Vec<SetOp>> {
    proptest::collection::vec(
        (proptest::bool::ANY, 0u32..6).prop_map(|(ins, e)| {
            if ins {
                SetOp::Insert(e)
            } else {
                SetOp::Remove(e)
            }
        }),
        0..12,
    )
}

/// One update against a sequence-shaped value.
#[derive(Debug, Clone)]
enum SeqOp {
    Push(u32),
    InsertAt(usize, u32),
    RemoveAt(usize),
    SetAt(usize, u32),
}

fn seq_ops() -> impl Strategy<Value = Vec<SeqOp>> {
    proptest::collection::vec(
        (0u32..4, 0usize..8, 0u32..6).prop_map(|(kind, idx, e)| match kind {
            0 => SeqOp::Push(e),
            1 => SeqOp::InsertAt(idx, e),
            2 => SeqOp::RemoveAt(idx),
            _ => SeqOp::SetAt(idx, e),
        }),
        0..12,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Driving a persistent set and an eager set through the same update
    /// sequence keeps them observationally identical, and every return value
    /// agrees along the way.
    #[test]
    fn pset_matches_eager_set(init in proptest::collection::btree_set(0u32..6, 0..4), ops in set_ops()) {
        let eager: BTreeSet<ElemId> = init.into_iter().map(ElemId).collect();
        let mut persistent: PSet = eager.iter().copied().collect();
        let mut reference = eager;
        for op in ops {
            match op {
                SetOp::Insert(e) => {
                    prop_assert_eq!(persistent.insert(ElemId(e)), reference.insert(ElemId(e)));
                }
                SetOp::Remove(e) => {
                    prop_assert_eq!(persistent.remove(&ElemId(e)), reference.remove(&ElemId(e)));
                }
            }
            prop_assert_eq!(persistent.len(), reference.len());
            prop_assert!(persistent.iter().eq(reference.iter()), "iteration order diverged");
            prop_assert_eq!(hash_of(&persistent), hash_of(&reference), "hashes diverged");
            prop_assert_eq!(persistent.to_inner(), reference.clone());
        }
    }

    /// Same for maps, including the `insert` return value (the previous
    /// binding) and `remove` (the removed value).
    #[test]
    fn pmap_matches_eager_map(
        init in proptest::collection::btree_map(0u32..5, 0u32..5, 0..4),
        ops in proptest::collection::vec((0u32..3, 0u32..5, 0u32..5), 0..12),
    ) {
        let eager: BTreeMap<ElemId, ElemId> =
            init.into_iter().map(|(k, v)| (ElemId(k), ElemId(v))).collect();
        let mut persistent: PMap = eager.iter().map(|(&k, &v)| (k, v)).collect();
        let mut reference = eager;
        for (kind, k, v) in ops {
            let (k, v) = (ElemId(k), ElemId(v));
            match kind {
                0 | 1 => {
                    prop_assert_eq!(persistent.insert(k, v), reference.insert(k, v));
                }
                _ => {
                    prop_assert_eq!(persistent.remove(&k), reference.remove(&k));
                }
            }
            prop_assert!(persistent.iter().eq(reference.iter()), "iteration order diverged");
            prop_assert_eq!(hash_of(&persistent), hash_of(&reference), "hashes diverged");
            prop_assert_eq!(persistent.to_inner(), reference.clone());
        }
    }

    /// Same for sequences, mirroring the evaluator's bounds-checked use of
    /// `insert` / `remove` / `set`.
    #[test]
    fn pseq_matches_eager_vec(init in proptest::collection::vec(0u32..6, 0..4), ops in seq_ops()) {
        let eager: Vec<ElemId> = init.into_iter().map(ElemId).collect();
        let mut persistent: PSeq = eager.iter().copied().collect();
        let mut reference = eager;
        for op in ops {
            match op {
                SeqOp::Push(e) => {
                    persistent.push(ElemId(e));
                    reference.push(ElemId(e));
                }
                SeqOp::InsertAt(i, e) => {
                    let i = i.min(reference.len());
                    persistent.insert(i, ElemId(e));
                    reference.insert(i, ElemId(e));
                }
                SeqOp::RemoveAt(i) => {
                    if i < reference.len() {
                        prop_assert_eq!(persistent.remove(i), reference.remove(i));
                    }
                }
                SeqOp::SetAt(i, e) => {
                    if i < reference.len() {
                        persistent.set(i, ElemId(e));
                        reference[i] = ElemId(e);
                    }
                }
            }
            prop_assert_eq!(persistent.len(), reference.len());
            prop_assert!(persistent.iter().eq(reference.iter()), "iteration order diverged");
            prop_assert_eq!(hash_of(&persistent), hash_of(&reference), "hashes diverged");
            prop_assert_eq!(persistent.to_inner(), reference.clone());
        }
    }

    /// Equality, ordering, and hashing of persistent handles are structural:
    /// they agree with the eager collections for arbitrary pairs, both at the
    /// handle level and wrapped in [`Value`].
    #[test]
    fn comparisons_are_structural(
        a in proptest::collection::btree_set(0u32..6, 0..4),
        b in proptest::collection::btree_set(0u32..6, 0..4),
    ) {
        let ea: BTreeSet<ElemId> = a.into_iter().map(ElemId).collect();
        let eb: BTreeSet<ElemId> = b.into_iter().map(ElemId).collect();
        let pa = PSet::from(ea.clone());
        let pb = PSet::from(eb.clone());
        prop_assert_eq!(pa == pb, ea == eb);
        prop_assert_eq!(pa.cmp(&pb), ea.cmp(&eb));
        prop_assert_eq!(hash_of(&pa) == hash_of(&pb), hash_of(&ea) == hash_of(&eb));
        let va = Value::set_of(ea.iter().copied());
        let vb = Value::set_of(eb.iter().copied());
        prop_assert_eq!(va == vb, ea == eb);
        prop_assert_eq!(va.cmp(&vb), ea.cmp(&eb));
    }

    /// A shared handle that is then mutated never aliases its sibling: the
    /// sibling observes the original contents, and the two handles no longer
    /// share storage (while an untouched clone still does).
    #[test]
    fn shared_then_mutated_values_never_alias(
        init in proptest::collection::btree_set(0u32..6, 0..4),
        e in 0u32..8,
    ) {
        let original: PSet = init.iter().copied().map(ElemId).collect();
        let snapshot = original.to_inner();
        let untouched = original.clone();
        let mut mutated = original.clone();
        prop_assert!(mutated.ptr_eq(&original));

        let grew = mutated.insert(ElemId(e));
        prop_assert_eq!(original.to_inner(), snapshot.clone(), "mutation leaked into the original");
        prop_assert!(untouched.ptr_eq(&original), "untouched clone lost sharing");
        if grew {
            prop_assert!(!mutated.ptr_eq(&original), "mutated clone still aliases");
            prop_assert_eq!(mutated.len(), snapshot.len() + 1);
        }

        // Same through the `Value` wrapper, exercising the evaluator's path.
        let v = Value::set_of(snapshot.iter().copied());
        let mut w = v.clone();
        if let Value::Set(s) = &mut w {
            s.insert(ElemId(e));
        }
        prop_assert_eq!(v.as_set().unwrap(), &snapshot);
        prop_assert!(w.as_set().unwrap().contains(&ElemId(e)));
    }

    /// Sequence handles: mutating one of two clones leaves the other intact.
    #[test]
    fn shared_seq_mutation_does_not_alias(init in proptest::collection::vec(0u32..6, 0..5), e in 0u32..6) {
        let original: PSeq = init.iter().copied().map(ElemId).collect();
        let snapshot = original.to_inner();
        let mut mutated = original.clone();
        mutated.push(ElemId(e));
        prop_assert_eq!(original.to_inner(), snapshot.clone());
        prop_assert!(!mutated.ptr_eq(&original));
        prop_assert_eq!(mutated.len(), snapshot.len() + 1);
    }

    /// Reverse iteration also matches the eager collections — the evaluator
    /// relies on `rposition`, which walks the double-ended iterator from the
    /// back.
    #[test]
    fn reverse_iteration_matches_eager(
        set in proptest::collection::btree_set(0u32..50, 0..20),
        seq in proptest::collection::vec(0u32..50, 0..20),
    ) {
        let eset: BTreeSet<ElemId> = set.into_iter().map(ElemId).collect();
        let pset: PSet = eset.iter().copied().collect();
        prop_assert!(pset.iter().rev().eq(eset.iter().rev()));

        let emap: BTreeMap<ElemId, ElemId> =
            eset.iter().map(|&k| (k, ElemId(k.0 + 1))).collect();
        let pmap: PMap = emap.iter().map(|(&k, &v)| (k, v)).collect();
        prop_assert!(pmap.iter().rev().eq(emap.iter().rev()));

        let eseq: Vec<ElemId> = seq.into_iter().map(ElemId).collect();
        let pseq: PSeq = eseq.iter().copied().collect();
        prop_assert!(pseq.iter().rev().eq(eseq.iter().rev()));
        prop_assert_eq!(
            pseq.iter().rposition(|&e| e == ElemId(3)),
            eseq.iter().rposition(|&e| e == ElemId(3))
        );
    }

    /// Sequence comparison semantics are structural too: `Eq`/`Ord`/`Hash`
    /// of `PSeq` handles agree with the eager `Vec` for arbitrary pairs.
    #[test]
    fn seq_comparisons_are_structural(
        a in proptest::collection::vec(0u32..6, 0..6),
        b in proptest::collection::vec(0u32..6, 0..6),
    ) {
        let ea: Vec<ElemId> = a.into_iter().map(ElemId).collect();
        let eb: Vec<ElemId> = b.into_iter().map(ElemId).collect();
        let pa: PSeq = ea.iter().copied().collect();
        let pb: PSeq = eb.iter().copied().collect();
        prop_assert_eq!(pa == pb, ea == eb);
        prop_assert_eq!(pa.cmp(&pb), ea.cmp(&eb));
        prop_assert_eq!(hash_of(&pa) == hash_of(&pb), hash_of(&ea) == hash_of(&eb));
    }
}

/// A generous `O(log n)` ceiling on the number of tree nodes a single
/// mutation may clone: the weight-balanced tree (Δ = 3) has height at most
/// ~2.41·log₂(n), and one path-copy touches each level at most a constant
/// number of times (the spine node plus at most two rotation participants).
/// Any linear-cost regression blows straight through this for the sizes the
/// detach tests use (n ≥ 256, bound ≤ ~78).
fn log_detach_bound(n: usize) -> usize {
    let log2 = usize::BITS as usize - n.max(1).leading_zeros() as usize;
    6 * log2 + 18
}

proptest! {
    // Trees here are three orders of magnitude larger than in the
    // observational tests; fewer cases keep the suite fast.
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The tentpole property: mutating a *shared* N-element set detaches only
    /// `O(log N)` nodes from the snapshot — not the whole spine. Counted with
    /// the test-only `fresh_nodes_since` hook, which walks the mutated tree
    /// and counts nodes whose address was not present in the snapshot.
    #[test]
    fn set_detach_is_logarithmic(n in 256usize..2048, e in 0u32..4096, insert in proptest::bool::ANY) {
        let base: PSet = (1..=n as u32).map(ElemId).collect();
        let mut mutated = base.clone();
        if insert {
            mutated.insert(ElemId(e + n as u32 + 1));
        } else {
            mutated.remove(&ElemId(e % n as u32 + 1));
        }
        let fresh = mutated.fresh_nodes_since(&base);
        prop_assert!(
            fresh <= log_detach_bound(n),
            "one mutation of a shared {n}-element set cloned {fresh} nodes (bound {})",
            log_detach_bound(n)
        );
        // The snapshot itself never acquires fresh nodes.
        prop_assert_eq!(base.fresh_nodes_since(&base), 0);
    }

    /// Same for maps: one `insert`/`remove` against a shared N-entry map.
    #[test]
    fn map_detach_is_logarithmic(n in 256usize..2048, k in 0u32..4096, insert in proptest::bool::ANY) {
        let base: PMap = (1..=n as u32).map(|i| (ElemId(i), ElemId(i + 1))).collect();
        let mut mutated = base.clone();
        if insert {
            mutated.insert(ElemId(k % n as u32 + 1), ElemId(9999));
        } else {
            mutated.remove(&ElemId(k % n as u32 + 1));
        }
        let fresh = mutated.fresh_nodes_since(&base);
        prop_assert!(
            fresh <= log_detach_bound(n),
            "one mutation of a shared {n}-entry map cloned {fresh} nodes (bound {})",
            log_detach_bound(n)
        );
    }

    /// Same for sequences, across the whole positional update surface
    /// (`push` / `insert` / `remove` / `set`).
    #[test]
    fn seq_detach_is_logarithmic(n in 256usize..2048, i in 0usize..4096, kind in 0u32..4) {
        let base: PSeq = (1..=n as u32).map(ElemId).collect();
        let mut mutated = base.clone();
        match kind {
            0 => mutated.push(ElemId(7)),
            1 => mutated.insert(i % (n + 1), ElemId(7)),
            2 => { mutated.remove(i % n); }
            _ => { mutated.set(i % n, ElemId(7)); }
        }
        let fresh = mutated.fresh_nodes_since(&base);
        prop_assert!(
            fresh <= log_detach_bound(n),
            "one positional update of a shared {n}-element sequence cloned {fresh} nodes (bound {})",
            log_detach_bound(n)
        );
        prop_assert_eq!(base.len(), n, "the shared snapshot changed length");
    }
}
