//! `TermArena::clear()` across phase boundaries.
//!
//! The obligation scheduler keys, simplifies, and proves thousands of terms
//! per phase on thread-local arenas; a long-lived server resets those arenas
//! between phases with `clear()`. These tests pin the contract that matters
//! for correctness: after a clear, freshly interned terms — which are
//! routinely assigned the *same raw `TermId` numbers* the previous phase
//! used for different terms — must never resurrect stale memoized
//! simplify/nnf/substitution results from before the clear.

use std::collections::HashMap;

use semcommute_logic::arena::TermArena;
use semcommute_logic::build::*;
use semcommute_logic::Term;

/// A family of structurally different formulas over the same variables, so
/// that consecutive phases intern different terms onto recycled ids.
fn phase_terms(phase: usize) -> Vec<Term> {
    let base = [
        and2(var_bool("p"), not(var_bool("p"))),
        or2(var_bool("p"), not(var_bool("p"))),
        member(var_elem("v"), set_add(var_set("s"), var_elem("v"))),
        not(member(
            var_elem("v"),
            set_remove(var_set("s"), var_elem("v")),
        )),
        eq(
            set_add(set_add(var_set("s"), var_elem("a")), var_elem("b")),
            set_add(set_add(var_set("s"), var_elem("b")), var_elem("a")),
        ),
        implies(var_bool("p"), or2(var_bool("p"), var_bool("q"))),
        not(not(eq(var_int("x"), var_int("y")))),
    ];
    // Rotate so each phase interns the family in a different order: the raw
    // id assigned to a given term changes from phase to phase.
    let n = base.len();
    (0..n).map(|i| base[(i + phase) % n].clone()).collect()
}

/// Simplification after a clear must agree with a brand-new arena, even
/// though the recycled `TermId`s collide with pre-clear memo entries.
#[test]
fn clear_does_not_resurrect_stale_simplify_results() {
    let mut arena = TermArena::new();
    for phase in 0..5 {
        for term in phase_terms(phase) {
            let id = arena.intern(&term);
            let simplified_id = arena.simplify_id(id);
            let simplified = arena.to_term(simplified_id);
            let mut fresh = TermArena::new();
            let fresh_id = fresh.intern(&term);
            let expected_id = fresh.simplify_id(fresh_id);
            let expected = fresh.to_term(expected_id);
            assert_eq!(
                simplified, expected,
                "phase {phase}: stale memoized simplify for {term}"
            );
        }
        arena.clear();
        assert!(arena.is_empty(), "clear resets the arena");
    }
}

/// Same pinning for the polarity-keyed NNF memo table.
#[test]
fn clear_does_not_resurrect_stale_nnf_results() {
    let mut arena = TermArena::new();
    for phase in 0..5 {
        for term in phase_terms(phase) {
            for negated in [false, true] {
                let id = arena.intern(&term);
                let nnf_id = arena.nnf_id(id, negated);
                let nnf = arena.to_term(nnf_id);
                let mut fresh = TermArena::new();
                let fresh_id = fresh.intern(&term);
                let expected_id = fresh.nnf_id(fresh_id, negated);
                let expected = fresh.to_term(expected_id);
                assert_eq!(
                    nnf, expected,
                    "phase {phase}: stale memoized nnf (negated: {negated}) for {term}"
                );
            }
        }
        arena.clear();
    }
}

/// Substitution memoizes per call but consults cached free-variable lists;
/// those must also reset cleanly at a phase boundary.
#[test]
fn clear_does_not_corrupt_substitution_metadata() {
    let mut arena = TermArena::new();
    for phase in 0..4 {
        let term = phase_terms(phase)[0].clone();
        let id = arena.intern(&term);
        let p = arena.sym("p");
        let replacement = arena.intern(&tru());
        let substituted = arena.substitute_id(id, &HashMap::from([(p, replacement)]));
        let out = arena.to_term(substituted);
        let mut fresh = TermArena::new();
        let fresh_id = fresh.intern(&term);
        let fp = fresh.sym("p");
        let fresh_replacement = fresh.intern(&tru());
        let expected_id = fresh.substitute_id(fresh_id, &HashMap::from([(fp, fresh_replacement)]));
        let expected = fresh.to_term(expected_id);
        assert_eq!(out, expected, "phase {phase}");
        arena.clear();
    }
}

/// The cross-phase scenario the scheduler cares about end to end: verdict
/// keys and structural hashes computed after a clear match those computed
/// before it, so a sharded verdict cache keyed by structural hash stays
/// consistent across arena resets.
#[test]
fn structural_hashes_are_stable_across_clear() {
    let mut arena = TermArena::new();
    let mut before = Vec::new();
    for term in phase_terms(0) {
        let id = arena.intern(&term);
        let simplified = arena.simplify_id(id);
        before.push(arena.structural_hash(simplified));
    }
    arena.clear();
    // Interleave other work so the family's ids differ this phase.
    arena.intern(&var_bool("unrelated"));
    for (term, expected) in phase_terms(0).into_iter().zip(before) {
        let id = arena.intern(&term);
        let simplified = arena.simplify_id(id);
        assert_eq!(
            arena.structural_hash(simplified),
            expected,
            "structural hash of {term} drifted across clear()"
        );
    }
}
