//! Property tests for formula compilation as the admission gatekeeper uses
//! it: random **well-sorted** condition formulas over the spec vocabulary
//! (`s1`, `r1`, canonical argument names), lowered with
//! [`Program::lower_formula`], must evaluate exactly like the reference
//! term-tree interpreter [`eval_bool`] on arbitrary slot valuations —
//! including error *strings* (modulo the compiled executor's
//! `"evaluating goal:"` region prefix) — and the compiled program's input
//! reads must coincide with the formula's free variables, which is what the
//! gatekeeper's `requires_pre_state` projection is derived from. A second
//! test drives many programs through one shared register buffer in shuffled
//! order and checks the results against fresh-buffer evaluations: register
//! reuse across calls and across programs must never leak state.

use semcommute_logic::{build, eval_bool, free_vars, Model, Sort, Term, Value};
use semcommute_prover::Program;

/// Deterministic xorshift64* generator — no external crates, reproducible
/// failures.
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> XorShift {
        XorShift(seed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn chance(&mut self, percent: u64) -> bool {
        self.below(100) < percent
    }
}

/// The admission vocabulary: the slot layout the gatekeeper compiles with —
/// a state variable, a result variable, and canonical argument names. `s1`'s
/// sort cycles through the four abstract state sorts so every collection
/// theory gets exercised.
fn vocabulary(case: u64) -> Vec<(String, Sort)> {
    let state = [Sort::Set, Sort::Map, Sort::Seq, Sort::Int][(case % 4) as usize];
    let result = [Sort::Bool, Sort::Int, Sort::Elem][(case % 3) as usize];
    vec![
        ("s1".to_string(), state),
        ("r1".to_string(), result),
        ("v1".to_string(), Sort::Elem),
        ("v2".to_string(), Sort::Elem),
        ("k1".to_string(), Sort::Elem),
        ("k2".to_string(), Sort::Elem),
        ("i1".to_string(), Sort::Int),
        ("i2".to_string(), Sort::Int),
        ("b2".to_string(), Sort::Bool),
    ]
}

/// A random variable of the requested sort from the vocabulary plus any
/// quantifier binders in scope, or `None` if no such variable exists.
fn pick_var(rng: &mut XorShift, scope: &[(String, Sort)], sort: Sort) -> Option<Term> {
    let candidates: Vec<&String> = scope
        .iter()
        .filter(|(_, s)| *s == sort)
        .map(|(n, _)| n)
        .collect();
    if candidates.is_empty() {
        return None;
    }
    let name = candidates[rng.below(candidates.len() as u64) as usize];
    Some(build::var_of(name, sort))
}

/// A random well-sorted term of the requested sort. Depth-bounded; at depth
/// zero only leaves (variables and literals) are produced.
fn gen(rng: &mut XorShift, scope: &mut Vec<(String, Sort)>, sort: Sort, depth: u32) -> Term {
    if depth == 0 || rng.chance(25) {
        if let Some(var) = pick_var(rng, scope, sort) {
            if rng.chance(70) {
                return var;
            }
        }
        return match sort {
            Sort::Bool => {
                if rng.chance(50) {
                    build::tru()
                } else {
                    build::fls()
                }
            }
            Sort::Int => build::int(rng.below(7) as i64 - 3),
            Sort::Elem => build::null(),
            Sort::Set => build::empty_set(),
            Sort::Map => build::empty_map(),
            Sort::Seq => build::empty_seq(),
        };
    }
    let d = depth - 1;
    match sort {
        Sort::Bool => match rng.below(12) {
            0 => build::not(gen(rng, scope, Sort::Bool, d)),
            1 => build::and2(
                gen(rng, scope, Sort::Bool, d),
                gen(rng, scope, Sort::Bool, d),
            ),
            2 => build::or2(
                gen(rng, scope, Sort::Bool, d),
                gen(rng, scope, Sort::Bool, d),
            ),
            3 => build::implies(
                gen(rng, scope, Sort::Bool, d),
                gen(rng, scope, Sort::Bool, d),
            ),
            4 => build::iff(
                gen(rng, scope, Sort::Bool, d),
                gen(rng, scope, Sort::Bool, d),
            ),
            5 => {
                let operand_sort = [Sort::Bool, Sort::Int, Sort::Elem][rng.below(3) as usize];
                build::eq(
                    gen(rng, scope, operand_sort, d),
                    gen(rng, scope, operand_sort, d),
                )
            }
            6 => build::member(
                gen(rng, scope, Sort::Elem, d),
                gen(rng, scope, Sort::Set, d),
            ),
            7 => build::map_has_key(
                gen(rng, scope, Sort::Map, d),
                gen(rng, scope, Sort::Elem, d),
            ),
            8 => build::seq_contains(
                gen(rng, scope, Sort::Seq, d),
                gen(rng, scope, Sort::Elem, d),
            ),
            9 => build::lt(gen(rng, scope, Sort::Int, d), gen(rng, scope, Sort::Int, d)),
            10 => build::le(gen(rng, scope, Sort::Int, d), gen(rng, scope, Sort::Int, d)),
            _ => {
                // A bounded quantifier with a fresh binder in scope.
                let binder = format!("q{}", scope.len());
                let lo = build::int(rng.below(3) as i64);
                let hi = build::int(rng.below(5) as i64);
                scope.push((binder.clone(), Sort::Int));
                let body = gen(rng, scope, Sort::Bool, d);
                scope.pop();
                if rng.chance(50) {
                    build::forall_int(&binder, lo, hi, body)
                } else {
                    build::exists_int(&binder, lo, hi, body)
                }
            }
        },
        Sort::Int => match rng.below(6) {
            0 => build::add(gen(rng, scope, Sort::Int, d), gen(rng, scope, Sort::Int, d)),
            1 => build::sub(gen(rng, scope, Sort::Int, d), gen(rng, scope, Sort::Int, d)),
            2 => build::neg(gen(rng, scope, Sort::Int, d)),
            3 => build::card(gen(rng, scope, Sort::Set, d)),
            4 => build::seq_len(gen(rng, scope, Sort::Seq, d)),
            _ => build::map_size(gen(rng, scope, Sort::Map, d)),
        },
        Sort::Elem => match rng.below(3) {
            0 => build::map_get(
                gen(rng, scope, Sort::Map, d),
                gen(rng, scope, Sort::Elem, d),
            ),
            1 => build::seq_at(gen(rng, scope, Sort::Seq, d), gen(rng, scope, Sort::Int, d)),
            _ => build::ite(
                gen(rng, scope, Sort::Bool, d),
                gen(rng, scope, Sort::Elem, d),
                gen(rng, scope, Sort::Elem, d),
            ),
        },
        Sort::Set => match rng.below(3) {
            0 => build::set_add(
                gen(rng, scope, Sort::Set, d),
                gen(rng, scope, Sort::Elem, d),
            ),
            1 => build::set_remove(
                gen(rng, scope, Sort::Set, d),
                gen(rng, scope, Sort::Elem, d),
            ),
            _ => build::ite(
                gen(rng, scope, Sort::Bool, d),
                gen(rng, scope, Sort::Set, d),
                gen(rng, scope, Sort::Set, d),
            ),
        },
        Sort::Map => match rng.below(2) {
            0 => build::map_put(
                gen(rng, scope, Sort::Map, d),
                gen(rng, scope, Sort::Elem, d),
                gen(rng, scope, Sort::Elem, d),
            ),
            _ => build::map_remove(
                gen(rng, scope, Sort::Map, d),
                gen(rng, scope, Sort::Elem, d),
            ),
        },
        Sort::Seq => build::ite(
            gen(rng, scope, Sort::Bool, d),
            gen(rng, scope, Sort::Seq, d),
            gen(rng, scope, Sort::Seq, d),
        ),
    }
}

/// A random value of the given sort over a small universe.
fn random_value(rng: &mut XorShift, sort: Sort) -> Value {
    use semcommute_logic::ElemId;
    match sort {
        Sort::Bool => Value::Bool(rng.below(2) == 0),
        Sort::Int => Value::Int(rng.below(9) as i64 - 4),
        Sort::Elem => Value::elem(rng.below(5) as u32 + 1),
        Sort::Set => Value::set_of((0..rng.below(4)).map(|_| ElemId(rng.below(5) as u32 + 1))),
        Sort::Map => Value::map_of((0..rng.below(4)).map(|_| {
            (
                ElemId(rng.below(5) as u32 + 1),
                ElemId(rng.below(5) as u32 + 1),
            )
        })),
        Sort::Seq => Value::seq_of((0..rng.below(4)).map(|_| ElemId(rng.below(5) as u32 + 1))),
    }
}

/// A random slot valuation: usually well-sorted, sometimes deliberately
/// ill-sorted so the error paths are differentially exercised too.
fn random_valuation(rng: &mut XorShift, vocab: &[(String, Sort)]) -> Vec<Value> {
    vocab
        .iter()
        .map(|(_, sort)| {
            let sort = if rng.chance(8) {
                [
                    Sort::Bool,
                    Sort::Int,
                    Sort::Elem,
                    Sort::Set,
                    Sort::Map,
                    Sort::Seq,
                ][rng.below(6) as usize]
            } else {
                *sort
            };
            random_value(rng, sort)
        })
        .collect()
}

/// Evaluates through the reference interpreter, with the model built the way
/// the gatekeeper builds it (slot order, later inserts win).
fn reference(formula: &Term, vocab: &[(String, Sort)], values: &[Value]) -> Result<bool, String> {
    let mut model = Model::new();
    for ((name, _), value) in vocab.iter().zip(values) {
        model.insert(name.clone(), value.clone());
    }
    eval_bool(formula, &model).map_err(|e| e.to_string())
}

/// Compiled evaluation ≡ reference evaluation, verdicts and error strings
/// (modulo the `"evaluating goal:"` region prefix), and the program's input
/// reads are exactly the formula's free variables.
#[test]
fn compiled_formula_agrees_with_eval_bool_on_arbitrary_valuations() {
    let mut rng = XorShift::new(0x5eed_ad51_7710);
    for case in 0..400u64 {
        let vocab = vocabulary(case);
        let mut scope = vocab.clone();
        let formula = gen(&mut rng, &mut scope, Sort::Bool, 4);
        let order: Vec<String> = vocab.iter().map(|(n, _)| n.clone()).collect();
        let program = Program::lower_formula(&formula, &order);
        assert_eq!(program.input_count(), vocab.len());

        // Input reads ≡ free variables: the basis of the gatekeeper's
        // compiled `requires_pre_state` projection.
        let free = free_vars(&formula);
        for (slot, (name, _)) in vocab.iter().enumerate() {
            assert_eq!(
                program.input_reads()[slot],
                free.contains_key(name.as_str()),
                "case {case}: slot `{name}` read/free mismatch for {formula:?}"
            );
        }

        let mut inputs = Vec::new();
        let mut regs = Vec::new();
        for _ in 0..25 {
            let values = random_valuation(&mut rng, &vocab);
            let expected = reference(&formula, &vocab, &values);
            inputs.clear();
            inputs.extend(values.iter().cloned());
            let got = program.eval_formula(&mut inputs, &mut regs);
            match (&expected, &got) {
                (Ok(a), Ok(b)) => assert_eq!(
                    a, b,
                    "case {case}: verdict diverged on {values:?} for {formula:?}"
                ),
                (Err(e), Err(f)) => assert_eq!(
                    &format!("evaluating goal: {e}"),
                    f,
                    "case {case}: error diverged on {values:?} for {formula:?}"
                ),
                _ => panic!(
                    "case {case}: one side errored on {values:?} for {formula:?}: \
                     reference {expected:?}, compiled {got:?}"
                ),
            }
        }
    }
}

/// Register-buffer reuse never leaks state between evaluations: many
/// programs evaluated through one shared buffer pair, in an interleaved
/// order, produce exactly the results of fresh-buffer evaluations.
#[test]
fn shared_register_buffers_never_leak_between_programs() {
    let mut rng = XorShift::new(0xbadc_0ffe_e001);
    let mut programs = Vec::new();
    for case in 0..40u64 {
        let vocab = vocabulary(case);
        let mut scope = vocab.clone();
        let formula = gen(&mut rng, &mut scope, Sort::Bool, 3);
        let order: Vec<String> = vocab.iter().map(|(n, _)| n.clone()).collect();
        programs.push((Program::lower_formula(&formula, &order), vocab));
    }
    // Expected results from fresh buffers per evaluation.
    let mut plan = Vec::new();
    for round in 0..6u64 {
        for idx in 0..programs.len() {
            let idx = (idx + (round as usize * 7)) % programs.len();
            let (_, vocab) = &programs[idx];
            let values = random_valuation(&mut rng, vocab);
            plan.push((idx, values));
        }
    }
    let expected: Vec<Result<bool, String>> = plan
        .iter()
        .map(|(idx, values)| {
            let (program, _) = &programs[*idx];
            let mut inputs = values.clone();
            let mut fresh_regs = Vec::new();
            program.eval_formula(&mut inputs, &mut fresh_regs)
        })
        .collect();
    // Same plan through one shared buffer pair.
    let mut inputs = Vec::new();
    let mut regs = Vec::new();
    for (step, (idx, values)) in plan.iter().enumerate() {
        let (program, _) = &programs[*idx];
        inputs.clear();
        inputs.extend(values.iter().cloned());
        let got = program.eval_formula(&mut inputs, &mut regs);
        assert_eq!(
            got, expected[step],
            "step {step}: shared-buffer evaluation of program {idx} diverged — register \
             state leaked from a previous call"
        );
        assert!(inputs.is_empty(), "inputs are drained by evaluation");
    }
}
