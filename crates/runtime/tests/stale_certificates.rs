//! Regression test for a composition hole in pairwise admission.
//!
//! A between condition certified against a logged operation's *captured*
//! pre-state certifies swapping the pair adjacent at that state. When
//! several later operations are each admitted against the same long-lived
//! logged entry, every certificate is individually valid at the capture but
//! the certificates need not compose: here, a logged `get(3)` over a run of
//! duplicate elements admits three single left-shifting `removeAt`s one by
//! one, yet their composition shifts by three and moves a different element
//! into the observed slot — serial replay in ticket order would then read a
//! value the live execution never saw. (This is the deterministic,
//! single-threaded reconstruction of a divergence the differential stress
//! harness hits only rarely, under heavy interleaving.)
//!
//! The fix: the validated admission pass re-anchors every state-reading
//! condition at the live state under the structure lock (see
//! `Shared::check_against_locked` and the gatekeeper's `check_*_at`
//! methods). This test pins the exact trace: two removals are admitted, the
//! third must conflict with the logged observer.

use semcommute_logic::{ElemId, Value};
use semcommute_runtime::{
    AdmitBackend, AnyStructure, RuntimeOptions, SpeculativeRuntime, TxnError,
};
use semcommute_spec::AbstractState;

#[test]
fn stale_observer_certificates_do_not_compose() {
    for backend in [AdmitBackend::Bytecode, AdmitBackend::Interp] {
        let rt = SpeculativeRuntime::with_options(
            AnyStructure::by_name("ArrayList").unwrap(),
            RuntimeOptions {
                backend,
                ..RuntimeOptions::default()
            },
        );

        // Seed [1, 1, 1, 1, 1, 1, 10].
        let mut seed = rt.begin();
        seed.execute("addAt", &[Value::Int(0), Value::elem(10)])
            .unwrap();
        for _ in 0..6 {
            seed.execute("addAt", &[Value::Int(0), Value::elem(1)])
                .unwrap();
        }
        seed.commit();

        // A long-lived observer logs `get(3) = 1` and stays uncommitted.
        let mut observer = rt.begin();
        let read = observer.execute("get", &[Value::Int(3)]).unwrap();
        assert_eq!(read, Some(Value::elem(1)), "{backend:?}");

        // Two removals below the observed index are admissible — each is a
        // single left shift, and after each the observed slot still reads a
        // 1 (the re-anchored condition holds at the live state too).
        for index in [3, 1] {
            let mut txn = rt.begin();
            txn.execute("removeAt", &[Value::Int(index)]).unwrap();
            txn.commit();
        }

        // The third removal still carries a valid certificate against the
        // observer's captured pre-state (the duplicate run), but at the live
        // state [1, 1, 1, 1, 10] one more shift would move the 10 into the
        // observed slot. Admitting it would make the observer's recorded
        // read unserializable; it must conflict.
        let mut third = rt.begin();
        match third.execute("removeAt", &[Value::Int(0)]) {
            Err(TxnError::Conflict(conflict)) => {
                assert_eq!(conflict.logged_op, "get", "{backend:?}");
                assert_eq!(conflict.incoming_op, "removeAt", "{backend:?}");
            }
            other => panic!("stale certificate was admitted ({backend:?}): {other:?}"),
        }
        third.abort();

        // The observer commits last and its read replays identically in
        // ticket order: seed, removeAt(3), removeAt(1), get(3) = 1.
        observer.commit();
        assert_eq!(
            rt.snapshot(),
            AbstractState::List([1, 1, 1, 1, 10].iter().map(|&i| ElemId(i)).collect()),
            "{backend:?}"
        );
    }
}
