//! Backend-differential harness for the admission gatekeeper.
//!
//! The compiled admission backend ([`AdmitBackend::Bytecode`]) must be
//! observationally equivalent to the `Model`-building interpreter
//! ([`AdmitBackend::Interp`]) — same admit/deny verdicts *and* the same
//! [`AdmissionError::Conflict`] vs [`AdmissionError::Evaluation`]
//! classification, which the executor's retry policy depends on. For every
//! catalog (interface, op-pair) this harness feeds both backends randomized
//! log entries and incoming arguments — well-formed ones, entries with the
//! pre-state or the recorded result missing, entries with truncated argument
//! lists, ill-sorted arguments, and unknown operations — and asserts the
//! outcomes classify identically (conflicts additionally compare equal
//! field-by-field; error *messages* may differ, the interpreter names
//! variables where the compiled executor names slots).

use semcommute_logic::{ElemId, Sort, Value};
use semcommute_runtime::{
    AdmissionError, AdmitBackend, CommutativityGatekeeper, LogEntry, OperationLog,
};
use semcommute_spec::InterfaceId;

/// Deterministic xorshift64* generator — no external crates, reproducible
/// failures.
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> XorShift {
        XorShift(seed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn chance(&mut self, percent: u64) -> bool {
        self.below(100) < percent
    }
}

/// A random value of the given sort over a small universe, so equalities and
/// memberships genuinely hit both outcomes.
fn random_value(rng: &mut XorShift, sort: Sort) -> Value {
    match sort {
        Sort::Bool => Value::Bool(rng.below(2) == 0),
        Sort::Int => Value::Int(rng.below(9) as i64 - 4),
        Sort::Elem => {
            if rng.chance(10) {
                Value::null()
            } else {
                Value::elem(rng.below(6) as u32 + 1)
            }
        }
        Sort::Set => Value::set_of((0..rng.below(5)).map(|_| ElemId(rng.below(6) as u32 + 1))),
        Sort::Map => Value::map_of((0..rng.below(5)).map(|_| {
            (
                ElemId(rng.below(6) as u32 + 1),
                ElemId(rng.below(6) as u32 + 1),
            )
        })),
        Sort::Seq => Value::seq_of((0..rng.below(5)).map(|_| ElemId(rng.below(6) as u32 + 1))),
    }
}

/// A random value of a random (often wrong) sort.
fn random_any_value(rng: &mut XorShift) -> Value {
    let sort = [
        Sort::Bool,
        Sort::Int,
        Sort::Elem,
        Sort::Set,
        Sort::Map,
        Sort::Seq,
    ][rng.below(6) as usize];
    random_value(rng, sort)
}

/// Random arguments for `op`: usually well-sorted and complete, sometimes
/// truncated, sometimes with an ill-sorted entry — the compiled and
/// interpreted evaluators must classify the malformed cases identically too.
fn random_args(rng: &mut XorShift, iface: &semcommute_spec::InterfaceSpec, op: &str) -> Vec<Value> {
    let Some(spec) = iface.op(op) else {
        return Vec::new();
    };
    let mut args: Vec<Value> = spec
        .params
        .iter()
        .map(|(_, sort)| {
            if rng.chance(5) {
                random_any_value(rng)
            } else {
                random_value(rng, *sort)
            }
        })
        .collect();
    if rng.chance(5) && !args.is_empty() {
        args.truncate(args.len() - 1);
    }
    args
}

/// A randomized log entry for `op` as executed by `txn`.
fn random_entry(
    rng: &mut XorShift,
    iface: &semcommute_spec::InterfaceSpec,
    txn: u64,
    op: &str,
) -> LogEntry {
    let result = iface.op(op).and_then(|spec| spec.result_sort).map(|sort| {
        if rng.chance(5) {
            random_any_value(rng)
        } else {
            random_value(rng, sort)
        }
    });
    let pre_state = (!rng.chance(25)).then(|| random_value(rng, iface.state_sort));
    LogEntry {
        txn,
        op: op.to_string(),
        args: random_args(rng, iface, op),
        result: if rng.chance(10) { None } else { result },
        pre_state,
    }
}

/// Collapses an admission outcome for comparison: verdicts and conflicts
/// must match exactly; evaluation errors must match as a *class* (their
/// messages legitimately differ between backends).
#[derive(Debug, PartialEq)]
enum Outcome {
    Admitted,
    Conflict(semcommute_runtime::Conflict),
    Evaluation,
}

fn outcome(result: Result<(), AdmissionError>) -> Outcome {
    match result {
        Ok(()) => Outcome::Admitted,
        Err(AdmissionError::Conflict(c)) => Outcome::Conflict(c),
        Err(AdmissionError::Evaluation(_)) => Outcome::Evaluation,
    }
}

/// For every catalog pair of every interface: randomized single entries,
/// checked through both backends, must classify identically.
#[test]
fn compiled_and_interpreted_admission_agree_on_every_catalog_pair() {
    for interface in InterfaceId::ALL {
        let iface = &semcommute_spec::interface_by_id(interface);
        let bytecode = CommutativityGatekeeper::with_backend(interface, AdmitBackend::Bytecode);
        let interp = CommutativityGatekeeper::with_backend(interface, AdmitBackend::Interp);
        assert_eq!(bytecode.pairs(), interp.pairs(), "{interface}");
        for (first, second) in bytecode.pairs() {
            let mut rng =
                XorShift::new(0xfeed_face ^ (interface as u64) << 48 ^ seed_of(&first, &second));
            for case in 0..200 {
                let logged = random_entry(&mut rng, iface, 1, &first);
                let incoming = random_args(&mut rng, iface, &second);
                let fast = outcome(bytecode.check_entry(&logged, &second, &incoming));
                let slow = outcome(interp.check_entry(&logged, &second, &incoming));
                assert_eq!(
                    fast, slow,
                    "{interface}: {first}/{second} case {case} diverged on entry {logged:?} \
                     with incoming args {incoming:?}"
                );
            }
        }
    }
}

fn seed_of(first: &str, second: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in first.bytes().chain([b'/']).chain(second.bytes()) {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Multi-entry logs: `admit` scans entries in order and stops at the first
/// non-admission, so identical per-entry classification must make the whole
/// `admit` call agree too — checked directly here with mixed-op logs.
#[test]
fn admit_over_randomized_multi_entry_logs_agrees() {
    for interface in InterfaceId::ALL {
        let iface = &semcommute_spec::interface_by_id(interface);
        let bytecode = CommutativityGatekeeper::with_backend(interface, AdmitBackend::Bytecode);
        let interp = CommutativityGatekeeper::with_backend(interface, AdmitBackend::Interp);
        let firsts: Vec<String> = {
            let mut ops: Vec<String> = bytecode.pairs().into_iter().map(|(f, _)| f).collect();
            ops.dedup();
            ops
        };
        let seconds: Vec<String> = {
            let mut ops: Vec<String> = bytecode.pairs().into_iter().map(|(_, s)| s).collect();
            ops.sort();
            ops.dedup();
            ops
        };
        let mut rng = XorShift::new(0xdead_beef ^ (interface as u64) << 32);
        for case in 0..300 {
            let mut log = OperationLog::new();
            for _ in 0..rng.below(6) {
                let txn = rng.below(3) + 1;
                let op = &firsts[rng.below(firsts.len() as u64) as usize];
                log.record(random_entry(&mut rng, iface, txn, op));
            }
            let incoming_op = &seconds[rng.below(seconds.len() as u64) as usize];
            let incoming = random_args(&mut rng, iface, incoming_op);
            let txn = rng.below(4) + 1;
            let fast = outcome(bytecode.admit(&log, txn, incoming_op, &incoming));
            let slow = outcome(interp.admit(&log, txn, incoming_op, &incoming));
            assert_eq!(
                fast,
                slow,
                "{interface} case {case}: admit of `{incoming_op}` by txn {txn} diverged \
                 over log {:?}",
                log.entries()
            );
        }
    }
}

/// The error paths must classify identically as well: operations the catalog
/// does not know (either side of the pair) are evaluation errors, never
/// conflicts, under both backends.
#[test]
fn unknown_pairs_classify_as_evaluation_errors_under_both_backends() {
    for backend in [AdmitBackend::Bytecode, AdmitBackend::Interp] {
        let g = CommutativityGatekeeper::with_backend(InterfaceId::Set, backend);
        let mut log = OperationLog::new();
        log.record(LogEntry {
            txn: 1,
            op: "add".into(),
            args: vec![Value::elem(5)],
            result: Some(Value::Bool(true)),
            pre_state: None,
        });
        // Unknown incoming operation.
        assert!(matches!(
            g.admit(&log, 2, "frobnicate", &[Value::elem(5)]),
            Err(AdmissionError::Evaluation(_))
        ));
        // Unknown logged operation.
        let mut log = OperationLog::new();
        log.record(LogEntry {
            txn: 1,
            op: "frobnicate".into(),
            args: vec![],
            result: None,
            pre_state: None,
        });
        assert!(matches!(
            g.admit(&log, 2, "add", &[Value::elem(5)]),
            Err(AdmissionError::Evaluation(_))
        ));
    }
}

/// The missing-pre-state path raises the identical message under both
/// backends — it is detected before evaluation starts, from each backend's
/// own pre-state projection.
#[test]
fn missing_pre_state_message_is_identical_across_backends() {
    let bytecode = CommutativityGatekeeper::with_backend(InterfaceId::Set, AdmitBackend::Bytecode);
    let interp = CommutativityGatekeeper::with_backend(InterfaceId::Set, AdmitBackend::Interp);
    let entry = LogEntry {
        txn: 1,
        op: "size".into(),
        args: vec![],
        result: Some(Value::Int(0)),
        pre_state: None, // size/add reads s1 — this entry is unusable.
    };
    let msg = |g: &CommutativityGatekeeper| match g.check_entry(&entry, "add", &[Value::elem(1)]) {
        Err(AdmissionError::Evaluation(m)) => m,
        other => panic!("expected an evaluation error, got {other:?}"),
    };
    assert_eq!(msg(&bytecode), msg(&interp));
}

/// `SEMCOMMUTE_ADMIT` selects the process-wide default backend. The parse is
/// pure (tested exhaustively in the gatekeeper's unit tests); here we pin
/// that default-constructed gatekeepers and runtimes actually use it.
#[test]
fn default_backend_follows_the_process_wide_knob() {
    let expected = AdmitBackend::parse(std::env::var("SEMCOMMUTE_ADMIT").ok().as_deref());
    assert_eq!(AdmitBackend::default_backend(), expected);
    let g = CommutativityGatekeeper::new(InterfaceId::Map);
    assert_eq!(g.backend(), expected);
    let rt = semcommute_runtime::SpeculativeRuntime::new(
        semcommute_runtime::AnyStructure::by_name("HashSet").unwrap(),
    );
    assert_eq!(rt.admit_backend(), expected);
}
