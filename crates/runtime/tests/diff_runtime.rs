//! Cross-thread differential stress harness for the speculative runtime.
//!
//! For every concrete structure, random mixed workloads run through the
//! [`SpeculativeRuntime`] at 1, 4, and 8 threads. The key domain is small, so
//! transactions genuinely collide and the conflict/abort/rollback paths are
//! exercised, not just the happy path. After each run the harness checks:
//!
//! 1. **Serializability.** Every committed transaction records its operations
//!    (with their return values) and its commit ticket. Replaying the
//!    committed transactions serially, in ticket order, through the
//!    coarse-lock oracle must reproduce every recorded return value and the
//!    final abstract state — i.e. the concurrent execution is equivalent to
//!    that serial execution. This is exactly the property the verified
//!    between conditions and inverse operations are supposed to buy.
//! 2. **Representation invariants** hold on the shared structure afterwards.
//! 3. **Stats identity**: `commits + aborts == begun`, and the number of
//!    recorded committed transactions equals `commits`.
//!
//! The workload size is tunable for nightly-style soak runs via the
//! `SEMCOMMUTE_STRESS_ITERS` environment variable (transactions per thread,
//! default 40).
//!
//! Since PR 10 the matrix also crosses the contention-management fallback:
//! the base legs inherit the process-wide `SEMCOMMUTE_FALLBACK` default (so
//! the CI env legs bite), and dedicated legs pin the explicit `off` oracle
//! and the `aggressive` preset — plus a fault-driven leg that forces the
//! engine through mode transitions mid-workload. Replay must stay
//! bit-identical across all of them: degraded commits interleave with
//! speculative ones in the same commit-ticket order, and the drain barrier
//! is exactly what makes that order remain a valid serialization.

use std::sync::{Arc, Mutex};

use semcommute_logic::Value;
use semcommute_runtime::{
    AdmitBackend, AnyStructure, BackoffOptions, CoarseLockRuntime, CommutativityGatekeeper,
    FallbackOptions, FaultPlan, RuntimeOptions, SpeculativeRuntime, TxnError,
};
use semcommute_spec::InterfaceId;

/// Deterministic xorshift64* generator — no external crates, reproducible
/// failures.
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> XorShift {
        XorShift(seed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn iterations() -> u64 {
    std::env::var("SEMCOMMUTE_STRESS_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(40)
}

/// A random operation valid for the interface. Keys are drawn from a small
/// domain — skewed toward a handful of hot keys half of the time — so
/// concurrent transactions conflict often enough to exercise rollback.
fn random_op(rng: &mut XorShift, interface: InterfaceId) -> (&'static str, Vec<Value>) {
    let key = |rng: &mut XorShift| {
        let hot = rng.below(2) == 0;
        let k = if hot { rng.below(3) } else { rng.below(12) };
        Value::elem(k as u32 + 1)
    };
    match interface {
        InterfaceId::Accumulator => match rng.below(3) {
            0 => ("read", vec![]),
            _ => ("increase", vec![Value::Int(rng.below(11) as i64 - 5)]),
        },
        InterfaceId::Set => match rng.below(8) {
            0..=2 => ("add", vec![key(rng)]),
            3..=4 => ("remove", vec![key(rng)]),
            5..=6 => ("contains", vec![key(rng)]),
            _ => ("size", vec![]),
        },
        InterfaceId::Map => match rng.below(8) {
            0..=2 => ("put", vec![key(rng), Value::elem(rng.below(16) as u32 + 1)]),
            3..=4 => ("remove", vec![key(rng)]),
            5..=6 => ("get", vec![key(rng)]),
            _ => ("size", vec![]),
        },
        InterfaceId::List => {
            // Indices may be out of range by the time the operation runs —
            // the dispatcher rejects those and the transaction is dropped.
            let index = |rng: &mut XorShift| Value::Int(rng.below(5) as i64);
            match rng.below(10) {
                0..=2 => ("addAt", vec![index(rng), key(rng)]),
                3..=4 => ("removeAt", vec![index(rng)]),
                5 => ("set", vec![index(rng), key(rng)]),
                6 => ("get", vec![index(rng)]),
                7 => ("indexOf", vec![key(rng)]),
                _ => ("size", vec![]),
            }
        }
    }
}

/// A committed transaction as observed concurrently: its commit ticket and
/// the operations it executed with their recorded return values.
struct Committed {
    ticket: u64,
    ops: Vec<(&'static str, Vec<Value>, Option<Value>)>,
}

/// Runs the random workload at the given thread count and checks every
/// differential property, under the given admission backend.
fn differential(structure_name: &str, threads: u64, backend: AdmitBackend) {
    differential_with(
        structure_name,
        threads,
        RuntimeOptions {
            backend,
            ..RuntimeOptions::default()
        },
    );
}

/// [`differential`] with fully explicit [`RuntimeOptions`] — the fallback
/// and fault-injection legs construct their runtimes here. Returns the
/// runtime so callers can assert leg-specific properties (mode transitions,
/// degraded commits) on top of the differential ones.
fn differential_with(
    structure_name: &str,
    threads: u64,
    options: RuntimeOptions,
) -> SpeculativeRuntime {
    let per_thread = iterations();
    let rt =
        SpeculativeRuntime::with_options(AnyStructure::by_name(structure_name).unwrap(), options);
    let interface = AnyStructure::by_name(structure_name).unwrap().interface();
    let committed: Mutex<Vec<Committed>> = Mutex::new(Vec::new());

    std::thread::scope(|scope| {
        for thread in 0..threads {
            let rt = rt.clone();
            let committed = &committed;
            scope.spawn(move || {
                let mut rng =
                    XorShift::new(0x9e37_79b9 ^ (thread << 32) ^ threads ^ per_thread << 8);
                'txns: for _ in 0..per_thread {
                    let script: Vec<(&'static str, Vec<Value>)> = (0..rng.below(3) + 1)
                        .map(|_| random_op(&mut rng, interface))
                        .collect();
                    'retries: for _ in 0..1_000 {
                        let mut txn = rt.begin();
                        let mut recorded = Vec::with_capacity(script.len());
                        for (op, args) in &script {
                            match txn.execute(op, args) {
                                Ok(result) => recorded.push((*op, args.clone(), result)),
                                Err(TxnError::Conflict(_)) => {
                                    txn.abort();
                                    std::thread::yield_now();
                                    continue 'retries;
                                }
                                Err(TxnError::Dispatch(_)) => {
                                    // Stale index (list shrank): drop the
                                    // whole transaction, nothing committed.
                                    txn.abort();
                                    continue 'txns;
                                }
                                Err(other) => {
                                    panic!("unexpected transaction error: {other}")
                                }
                            }
                        }
                        let ticket = txn.commit();
                        committed.lock().unwrap().push(Committed {
                            ticket,
                            ops: recorded,
                        });
                        continue 'txns;
                    }
                    // Retry budget exhausted: the transaction stays aborted,
                    // which the stats identity below still accounts for.
                }
            });
        }
    });

    // 2. Representation invariants hold on the live structure.
    rt.check_invariants()
        .unwrap_or_else(|e| panic!("{structure_name}/{threads}: invariant violated: {e}"));

    // 3. Stats identity.
    let stats = rt.stats();
    assert_eq!(
        stats.begun,
        stats.commits + stats.aborts,
        "{structure_name}/{threads}: every begun transaction must commit or abort"
    );
    let mut committed = committed.into_inner().unwrap();
    assert_eq!(
        stats.commits as usize,
        committed.len(),
        "{structure_name}/{threads}: commit count disagrees with recorded transactions"
    );
    assert_eq!(rt.pending_operations(), 0);

    // 1. Serializability: serial replay in commit-ticket order through the
    // coarse-lock oracle reproduces every recorded result and the final
    // state.
    committed.sort_by_key(|c| c.ticket);
    let oracle = CoarseLockRuntime::new(AnyStructure::by_name(structure_name).unwrap());
    for txn in &committed {
        oracle.run_transaction(|serial| {
            for (op, args, recorded) in &txn.ops {
                let replayed = serial.execute(op, args).unwrap_or_else(|e| {
                    panic!("{structure_name}/{threads}: committed `{op}` rejected on replay: {e}")
                });
                assert_eq!(
                    &replayed, recorded,
                    "{structure_name}/{threads}: `{op}` returned a different value on serial \
                     replay — the concurrent execution is not serializable"
                );
            }
        });
    }
    assert_eq!(
        oracle.snapshot(),
        rt.snapshot(),
        "{structure_name}/{threads}: final state differs from the serial execution"
    );
    rt
}

fn differential_all_thread_counts(structure_name: &str) {
    for backend in [AdmitBackend::Bytecode, AdmitBackend::Interp] {
        for threads in [1, 4, 8] {
            differential(structure_name, threads, backend);
        }
    }
}

/// The fallback axis of the matrix: the explicit `off` oracle (the
/// pre-fallback engine) and the `aggressive` preset (transitions reachable
/// within a default-sized workload) at every thread count. Whether or not a
/// particular interleaving actually trips the threshold, commit-ticket
/// replay must stay bit-identical.
fn differential_fallback_axis(structure_name: &str) {
    for fallback in [FallbackOptions::off(), FallbackOptions::aggressive()] {
        for threads in [1, 4, 8] {
            let rt = differential_with(
                structure_name,
                threads,
                RuntimeOptions {
                    fallback,
                    ..RuntimeOptions::default()
                },
            );
            if !fallback.enabled {
                assert_eq!(
                    rt.stats().mode_switches,
                    0,
                    "{structure_name}/{threads}: a disabled fallback must never switch modes"
                );
                assert_eq!(rt.stats().degraded_commits, 0);
            }
        }
    }
}

/// The fault-driven leg: forced conflicts burn the first abort window, so
/// the engine *deterministically* degrades mid-workload and (with the
/// aggressive preset's short probe period) transitions back and forth while
/// the random workload continues underneath. Degraded and speculative
/// commits interleave in one ticket sequence — and the serial replay and
/// final-state checks inside [`differential_with`] must still hold exactly.
fn differential_across_mode_transitions(structure_name: &str, threads: u64) {
    let plan = Arc::new(FaultPlan::new());
    // The aggressive window is 16 finishes at a 25% threshold: 24 forced
    // first-op conflicts guarantee the first closed window is all aborts,
    // whatever the thread interleaving.
    for ordinal in 1..=24 {
        plan.force_conflict_at(ordinal);
    }
    let rt = differential_with(
        structure_name,
        threads,
        RuntimeOptions {
            fallback: FallbackOptions::aggressive(),
            backoff: BackoffOptions::off(),
            faults: Some(Arc::clone(&plan)),
            ..RuntimeOptions::default()
        },
    );
    let stats = rt.stats();
    assert!(
        stats.mode_switches >= 1,
        "{structure_name}/{threads}: the forced abort window must degrade the structure: {stats:?}"
    );
    assert!(
        stats.degraded_commits >= 1,
        "{structure_name}/{threads}: some commits must have run through the coarse section: {stats:?}"
    );
    // Once the structure degrades, remaining scheduled ordinals may be
    // drawn by degraded executes, which never consult the conflict hook —
    // so "at least the window-burning prefix, at most all" is the exact
    // bound here (single-threaded exactness is pinned in
    // `fault_injection.rs`).
    let fired = plan.fired().len();
    assert!((1..=24).contains(&fired), "fired {fired} forced conflicts");
}

/// The two backends must want pre-states for exactly the same operations:
/// the interpreter's syntactic free-variable projection and the compiled
/// programs' actual `s1` slot reads have to agree pair by pair across the
/// full catalog, or one backend would log pre-states the other expects —
/// snapshotting would regress silently.
#[test]
fn requires_pre_state_projections_agree_across_the_catalog() {
    for interface in InterfaceId::ALL {
        let bytecode = CommutativityGatekeeper::with_backend(interface, AdmitBackend::Bytecode);
        let interp = CommutativityGatekeeper::with_backend(interface, AdmitBackend::Interp);
        assert_eq!(bytecode.pairs(), interp.pairs(), "{interface}");
        for (first, second) in bytecode.pairs() {
            let (syntactic, compiled) =
                bytecode.pair_pre_state_projection(&first, &second).unwrap();
            assert_eq!(
                syntactic, compiled,
                "{interface}: {first}/{second}: syntactic s1 projection and compiled \
                 slot-read projection disagree"
            );
            // And the per-operation projection the executor consults follows.
            assert_eq!(
                bytecode.requires_pre_state(&first),
                interp.requires_pre_state(&first),
                "{interface}: requires_pre_state(`{first}`) differs between backends"
            );
        }
    }
}

#[test]
fn differential_accumulator() {
    differential_all_thread_counts("Accumulator");
}

#[test]
fn differential_hash_set() {
    differential_all_thread_counts("HashSet");
}

#[test]
fn differential_list_set() {
    differential_all_thread_counts("ListSet");
}

#[test]
fn differential_hash_table() {
    differential_all_thread_counts("HashTable");
}

#[test]
fn differential_association_list() {
    differential_all_thread_counts("AssociationList");
}

#[test]
fn differential_array_list() {
    differential_all_thread_counts("ArrayList");
}

#[test]
fn differential_fallback_hash_set() {
    differential_fallback_axis("HashSet");
}

#[test]
fn differential_fallback_hash_table() {
    differential_fallback_axis("HashTable");
}

#[test]
fn differential_fallback_array_list() {
    differential_fallback_axis("ArrayList");
}

#[test]
fn differential_fallback_accumulator() {
    differential_fallback_axis("Accumulator");
}

#[test]
fn differential_mode_transitions_hash_set() {
    for threads in [1, 4] {
        differential_across_mode_transitions("HashSet", threads);
    }
}

#[test]
fn differential_mode_transitions_hash_table() {
    for threads in [1, 4] {
        differential_across_mode_transitions("HashTable", threads);
    }
}
