//! Deterministic fault-injection suite: every injected fault fires exactly
//! where scheduled, the runtime's recovery paths behave as documented under
//! injection, and the stats accounting (`begun == commits + aborts`, the
//! new `degraded_commits` / `mode_switches` counters) stays consistent
//! throughout.
//!
//! The marquee test drives the full contention-management round-trip —
//! `Speculative → Degraded → Probing → Speculative` — from a single thread,
//! with forced admission conflicts standing in for real contention, so the
//! transition numerics are exact rather than interleaving-dependent.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};

use semcommute_logic::Value;
use semcommute_runtime::{
    AnyStructure, BackoffOptions, FallbackOptions, FaultKind, FaultPlan, Mode, RuntimeOptions,
    SpeculativeRuntime, TxnError,
};

fn runtime_with(plan: &Arc<FaultPlan>, fallback: FallbackOptions) -> SpeculativeRuntime {
    SpeculativeRuntime::with_options(
        AnyStructure::by_name("HashSet").unwrap(),
        RuntimeOptions {
            fallback,
            backoff: BackoffOptions::off(),
            faults: Some(Arc::clone(plan)),
            ..RuntimeOptions::default()
        },
    )
}

fn assert_stats_identity(rt: &SpeculativeRuntime) {
    let stats = rt.stats();
    assert_eq!(
        stats.begun,
        stats.commits + stats.aborts,
        "every begun transaction must have finished: {stats:?}"
    );
}

/// The tentpole demonstration: forced conflicts burn a full abort window
/// (degrading the structure), the degraded phase commits through the coarse
/// section, probing re-measures, and a clean probe window restores
/// speculation — with every counter accounted for.
#[test]
fn forced_conflicts_drive_a_full_mode_round_trip() {
    let plan = Arc::new(FaultPlan::new());
    // One forced conflict per ordinal 1..=8: exactly one abort window.
    for ordinal in 1..=8 {
        plan.force_conflict_at(ordinal);
    }
    let options = FallbackOptions {
        enabled: true,
        window: 8,
        degrade_percent: 50,
        probe_period: 4,
        probe_window: 4,
    };
    let rt = runtime_with(&plan, options);
    assert_eq!(rt.mode(), Mode::Speculative);

    // Nine committed transactions, one element each. The first run call
    // burns the eight forced conflicts (one abort per attempt, closing the
    // abort window at 100%) and then commits through the degraded section.
    for element in 1..=9u32 {
        rt.run(100, |txn| {
            txn.execute("add", &[Value::elem(element)]).map(|_| ())
        })
        .unwrap();
        match element {
            // Runs 1–3 finish inside the degraded phase (the fourth
            // degraded finish starts the probe phase).
            1..=3 => assert_eq!(rt.mode(), Mode::Degraded, "after run {element}"),
            // Run 4's commit is the fourth degraded finish → Probing.
            4..=7 => assert_eq!(rt.mode(), Mode::Probing, "after run {element}"),
            // Run 8's commit closes a clean probe window → Speculative.
            _ => assert_eq!(rt.mode(), Mode::Speculative, "after run {element}"),
        }
    }

    let stats = rt.stats();
    assert_eq!(stats.commits, 9);
    assert_eq!(stats.aborts, 8, "one abort per forced conflict");
    assert_eq!(stats.conflicts, 8);
    assert_eq!(stats.begun, 17);
    assert_stats_identity(&rt);
    assert_eq!(
        stats.degraded_commits, 4,
        "runs 1–4 commit through the coarse section"
    );
    assert_eq!(
        stats.mode_switches, 3,
        "Speculative→Degraded, Degraded→Probing, Probing→Speculative"
    );

    // Every scheduled fault fired exactly once, in ordinal order, and the
    // final state holds all nine elements.
    let fired = plan.fired();
    assert_eq!(fired.len(), 8);
    for (i, fault) in fired.iter().enumerate() {
        assert_eq!(fault.kind, FaultKind::ForcedConflict);
        assert_eq!(fault.ordinal, Some(i as u64 + 1));
    }
    assert_eq!(rt.check_invariants(), Ok(()));
    let semcommute_spec::AbstractState::Set(contents) = rt.snapshot() else {
        panic!("set runtime must snapshot a set");
    };
    assert_eq!(contents.len(), 9);
}

#[test]
fn forced_conflict_fires_exactly_where_scheduled() {
    let plan = Arc::new(FaultPlan::new());
    plan.force_conflict_at(2);
    let rt = runtime_with(&plan, FallbackOptions::off());

    let mut t = rt.begin();
    // Ordinal 1: no fault scheduled.
    t.execute("add", &[Value::elem(1)]).unwrap();
    // Ordinal 2: the forced conflict, surfaced as a retryable Conflict.
    let err = t.execute("add", &[Value::elem(2)]).unwrap_err();
    let TxnError::Conflict(conflict) = err else {
        panic!("expected a conflict, got {err:?}");
    };
    assert_eq!(conflict.op_pair(), ("add", "<fault-injection>"));
    t.abort();
    // Ordinal 3 (fresh transaction): clean again.
    rt.run(0, |txn| txn.execute("add", &[Value::elem(3)]).map(|_| ()))
        .unwrap();

    let fired = plan.fired();
    assert_eq!(fired.len(), 1);
    assert_eq!(fired[0].kind, FaultKind::ForcedConflict);
    assert_eq!(fired[0].ordinal, Some(2));
    assert_eq!(rt.stats().conflicts, 1);
    assert_stats_identity(&rt);
}

#[test]
fn delayed_publish_fires_and_sleeps_where_scheduled() {
    let plan = Arc::new(FaultPlan::new());
    let delay = Duration::from_millis(20);
    plan.delay_publish_at(2, delay);
    let rt = runtime_with(&plan, FallbackOptions::off());

    let fast = Instant::now();
    rt.run(0, |txn| txn.execute("add", &[Value::elem(1)]).map(|_| ()))
        .unwrap();
    let fast = fast.elapsed();
    let slow = Instant::now();
    rt.run(0, |txn| txn.execute("add", &[Value::elem(2)]).map(|_| ()))
        .unwrap();
    let slow = slow.elapsed();
    assert!(slow >= delay, "delayed publish must sleep: {slow:?}");
    assert!(
        fast < delay,
        "unscheduled ordinals must not sleep: {fast:?}"
    );

    let fired = plan.fired();
    assert_eq!(fired.len(), 1);
    assert_eq!(fired[0].kind, FaultKind::DelayedPublish(delay));
    assert_eq!(fired[0].ordinal, Some(2));
    assert_stats_identity(&rt);
}

#[test]
fn injected_rollback_failure_poisons_the_runtime() {
    let plan = Arc::new(FaultPlan::new());
    let rt = runtime_with(&plan, FallbackOptions::off());

    // A first transaction proves rollback is healthy without injection.
    let mut warmup = rt.begin();
    warmup.execute("add", &[Value::elem(1)]).unwrap();
    warmup.abort();
    assert_eq!(rt.poisoned(), None);

    let mut t = rt.begin();
    plan.fail_rollback_of(t.id());
    t.execute("add", &[Value::elem(2)]).unwrap();
    t.abort();

    let reason = rt.poisoned().expect("injection must poison");
    assert!(reason.contains("injected rollback failure"), "{reason}");
    let stats = rt.stats();
    assert_eq!(stats.rollback_failures, 1);
    assert_stats_identity(&rt);

    // Sticky, like a genuine inverse failure: later operations are refused.
    let mut t2 = rt.begin();
    assert!(matches!(
        t2.execute("size", &[]),
        Err(TxnError::Poisoned(_))
    ));
    t2.abort();
    assert_stats_identity(&rt);

    let fired = plan.fired();
    assert_eq!(fired.len(), 1);
    assert_eq!(fired[0].kind, FaultKind::RollbackFailure);
    assert_eq!(fired[0].ordinal, None);
}

#[test]
fn scheduled_panic_fires_at_its_ordinal_and_the_drop_guard_cleans_up() {
    let plan = Arc::new(FaultPlan::new());
    plan.panic_at(2);
    let rt = runtime_with(&plan, FallbackOptions::off());

    let mut t = rt.begin();
    t.execute("add", &[Value::elem(1)]).unwrap();
    let unwound = catch_unwind(AssertUnwindSafe(|| t.execute("add", &[Value::elem(2)])));
    assert!(unwound.is_err(), "ordinal 2 must panic");
    // The transaction is still unfinished; dropping it rolls back the first
    // add through the verified inverse.
    drop(t);

    assert_eq!(rt.poisoned(), None);
    assert_eq!(
        rt.snapshot(),
        semcommute_spec::AbstractState::Set(Default::default())
    );
    let stats = rt.stats();
    assert_eq!(stats.aborts, 1);
    assert_stats_identity(&rt);
    let fired = plan.fired();
    assert_eq!(fired.len(), 1);
    assert_eq!(fired[0].kind, FaultKind::Panic);
    assert_eq!(fired[0].ordinal, Some(2));
}

/// Degradation must not disturb correctness bookkeeping even when faults
/// keep firing *during* degraded and probe phases: periodic conflicts make
/// every probe window fail, so the structure oscillates
/// Degraded → Probing → Degraded indefinitely — and the stats identity
/// still holds at every step.
#[test]
fn stats_stay_consistent_while_probing_keeps_failing() {
    let plan = Arc::new(FaultPlan::new());
    // Every speculative admission attempt conflicts.
    plan.force_conflict_every(1);
    let options = FallbackOptions {
        enabled: true,
        window: 4,
        degrade_percent: 50,
        probe_period: 2,
        probe_window: 2,
    };
    let rt = runtime_with(&plan, options);

    for element in 1..=20u32 {
        rt.run(100, |txn| {
            txn.execute("add", &[Value::elem(element)]).map(|_| ())
        })
        .unwrap();
        assert_stats_identity(&rt);
    }
    let stats = rt.stats();
    assert_eq!(stats.commits, 20);
    assert!(
        stats.degraded_commits >= 10,
        "most commits must have run degraded: {stats:?}"
    );
    assert!(
        stats.mode_switches >= 5,
        "the engine must keep oscillating Degraded↔Probing: {stats:?}"
    );
    assert_ne!(
        rt.mode(),
        Mode::Speculative,
        "permanent contention must keep the structure out of speculation"
    );
    assert!(plan.periodic_conflicts() > 0);
    assert_eq!(rt.check_invariants(), Ok(()));
}
