//! The commutativity gatekeeper: dynamic conflict detection using the
//! verified between conditions.

use std::collections::{HashMap, HashSet};
use std::fmt;

use semcommute_core::condition::names;
use semcommute_core::{interface_catalog, CommutativityCondition, ConditionKind};
use semcommute_logic::{eval_bool, free_vars, Model, Value};
use semcommute_spec::InterfaceId;

use crate::log::{LogEntry, OperationLog};

/// A detected conflict: the incoming operation does not semantically commute
/// with an operation another in-flight transaction has already executed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Conflict {
    /// The transaction whose logged operation the incoming operation
    /// conflicts with.
    pub with_txn: u64,
    /// The logged operation.
    pub logged_op: String,
    /// The incoming operation.
    pub incoming_op: String,
}

impl fmt::Display for Conflict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "`{}` does not commute with `{}` executed by transaction {}",
            self.incoming_op, self.logged_op, self.with_txn
        )
    }
}

/// Why the gatekeeper refused to admit an operation.
///
/// The two cases call for opposite reactions, which is why they are distinct:
/// a [`Conflict`] is the ordinary speculative outcome — the transaction
/// aborts, rolls back, and retrying is likely to succeed once the conflicting
/// transaction finishes. An [`Evaluation`](AdmissionError::Evaluation) error
/// means the check itself could not be performed (no condition is registered
/// for the operation pair, or the condition references information the log
/// entry does not carry). Retrying cannot fix that, so masking it as a
/// conflict — as the runtime did before — turns a configuration bug into a
/// retry loop that ends in a misleading "retries exhausted" report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmissionError {
    /// The operations genuinely do not commute; abort and retry.
    Conflict(Conflict),
    /// The commutativity check could not be evaluated; not retryable.
    Evaluation(String),
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionError::Conflict(c) => write!(f, "{c}"),
            AdmissionError::Evaluation(e) => write!(f, "condition evaluation failed: {e}"),
        }
    }
}

/// A between condition prepared for repeated run-time evaluation: the
/// canonical argument-variable names are resolved against the interface
/// specification once, and the formula's state requirements are precomputed,
/// so the per-admission work is a handful of O(1) model insertions plus the
/// formula walk.
#[derive(Debug, Clone)]
struct Prepared {
    condition: CommutativityCondition,
    /// Canonical names (`v1`, `k1`, …) for the first operation's arguments.
    first_params: Vec<String>,
    /// Canonical names (`v2`, `k2`, …) for the second operation's arguments.
    second_params: Vec<String>,
    /// Whether the formula mentions the initial state `s1`.
    needs_initial: bool,
}

/// Dynamic commutativity checking for one interface.
///
/// The gatekeeper holds the *between* conditions of the interface (for the
/// recorded variants — the runtime always records return values so that
/// inverse operations can be applied later) and evaluates them against the
/// run-time information captured in the operation log. This is the
/// "forward gatekeeper" usage scenario of the paper's related-work
/// discussion: before executing an operation, check that it commutes with
/// every operation executed by other uncommitted transactions.
///
/// Construction also computes, per first operation, whether *any* of its
/// between conditions reads the initial state `s1`; the executor consults
/// [`requires_pre_state`](CommutativityGatekeeper::requires_pre_state) to
/// decide whether a pre-state projection must be captured when logging the
/// operation. Most recorded-variant conditions test `r1` instead, so most
/// operations log no state at all.
#[derive(Debug, Clone)]
pub struct CommutativityGatekeeper {
    interface: InterfaceId,
    /// Prepared between conditions for recorded variants, keyed by first
    /// operation, then second operation (two `&str` lookups, no allocation
    /// on the admission path).
    conditions: HashMap<String, HashMap<String, Prepared>>,
    /// First operations at least one of whose between conditions mentions
    /// `s1` — the only operations whose log entries need a pre-state.
    pre_state_ops: HashSet<String>,
}

impl CommutativityGatekeeper {
    /// Builds the gatekeeper for an interface from the verified catalog.
    pub fn new(interface: InterfaceId) -> CommutativityGatekeeper {
        let iface = semcommute_spec::interface_by_id(interface);
        let mut conditions: HashMap<String, HashMap<String, Prepared>> = HashMap::new();
        let mut pre_state_ops = HashSet::new();
        for condition in interface_catalog(interface) {
            if condition.kind != ConditionKind::Between
                || !condition.first.recorded
                || !condition.second.recorded
            {
                continue;
            }
            let params = |op: &str, which: usize| -> Vec<String> {
                iface.op(op).map_or_else(Vec::new, |spec| {
                    spec.params
                        .iter()
                        .map(|(formal, _)| names::arg(formal, which))
                        .collect()
                })
            };
            let needs_initial = free_vars(&condition.formula).contains_key(names::INITIAL);
            if needs_initial {
                pre_state_ops.insert(condition.first.op.clone());
            }
            let prepared = Prepared {
                first_params: params(&condition.first.op, 1),
                second_params: params(&condition.second.op, 2),
                needs_initial,
                condition,
            };
            conditions
                .entry(prepared.condition.first.op.clone())
                .or_default()
                .insert(prepared.condition.second.op.clone(), prepared);
        }
        CommutativityGatekeeper {
            interface,
            conditions,
            pre_state_ops,
        }
    }

    /// The interface this gatekeeper serves.
    pub fn interface(&self) -> InterfaceId {
        self.interface
    }

    /// The between condition for an ordered operation pair.
    pub fn condition(&self, first_op: &str, second_op: &str) -> Option<&CommutativityCondition> {
        self.conditions
            .get(first_op)
            .and_then(|seconds| seconds.get(second_op))
            .map(|p| &p.condition)
    }

    /// Must a log entry for `op` (as the *first* operation of a later
    /// between check) carry the abstract pre-state?
    ///
    /// Returns `true` iff some between condition with `op` first mentions the
    /// initial state `s1`. The executor captures the (O(1), persistent)
    /// state projection only for these operations.
    pub fn requires_pre_state(&self, op: &str) -> bool {
        self.pre_state_ops.contains(op)
    }

    /// Does the incoming operation commute with one logged operation?
    ///
    /// # Errors
    ///
    /// Returns an error if the pair is unknown or the condition cannot be
    /// evaluated from the logged information.
    pub fn commutes_with(
        &self,
        logged: &LogEntry,
        incoming_op: &str,
        incoming_args: &[Value],
    ) -> Result<bool, String> {
        let prepared = self
            .conditions
            .get(logged.op.as_str())
            .and_then(|seconds| seconds.get(incoming_op))
            .ok_or_else(|| format!("no condition for pair {}/{incoming_op}", logged.op))?;
        let mut model = Model::new();
        if prepared.needs_initial {
            match &logged.pre_state {
                Some(state) => model.insert(names::INITIAL, state.clone()),
                None => {
                    return Err(format!(
                        "{}: entry for `{}` carries no pre-state but the condition reads `{}`",
                        prepared.condition.id(),
                        logged.op,
                        names::INITIAL,
                    ))
                }
            };
        }
        if let Some(result) = &logged.result {
            model.insert(names::RESULT1, result.clone());
        }
        for (name, value) in prepared.first_params.iter().zip(&logged.args) {
            model.insert(name.clone(), value.clone());
        }
        for (name, value) in prepared.second_params.iter().zip(incoming_args) {
            model.insert(name.clone(), value.clone());
        }
        eval_bool(&prepared.condition.formula, &model)
            .map_err(|e| format!("{}: {e}", prepared.condition.id()))
    }

    /// Checks an incoming operation of transaction `txn` against every logged
    /// operation of *other* transactions.
    ///
    /// # Errors
    ///
    /// Returns the first [`Conflict`] found, or
    /// [`AdmissionError::Evaluation`] if a condition could not be evaluated —
    /// the latter is **not** a conflict and must not be retried (see
    /// [`AdmissionError`]).
    pub fn admit(
        &self,
        log: &OperationLog,
        txn: u64,
        incoming_op: &str,
        incoming_args: &[Value],
    ) -> Result<(), AdmissionError> {
        for logged in log.entries_of_others(txn) {
            self.check_entry(logged, incoming_op, incoming_args)?;
        }
        Ok(())
    }

    /// Checks an incoming operation against one logged entry of another
    /// transaction, classifying the outcome as admissible, [`Conflict`], or
    /// an evaluation failure.
    ///
    /// # Errors
    ///
    /// See [`admit`](CommutativityGatekeeper::admit).
    pub fn check_entry(
        &self,
        logged: &LogEntry,
        incoming_op: &str,
        incoming_args: &[Value],
    ) -> Result<(), AdmissionError> {
        match self.commutes_with(logged, incoming_op, incoming_args) {
            Ok(true) => Ok(()),
            Ok(false) => Err(AdmissionError::Conflict(Conflict {
                with_txn: logged.txn,
                logged_op: logged.op.clone(),
                incoming_op: incoming_op.to_string(),
            })),
            Err(e) => Err(AdmissionError::Evaluation(e)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semcommute_spec::AbstractState;

    fn set_entry(txn: u64, op: &str, arg: u32, result: bool, state: &[u32]) -> LogEntry {
        LogEntry {
            txn,
            op: op.to_string(),
            args: vec![Value::elem(arg)],
            result: Some(Value::Bool(result)),
            pre_state: Some(
                AbstractState::Set(state.iter().map(|&i| semcommute_logic::ElemId(i)).collect())
                    .to_value(),
            ),
        }
    }

    #[test]
    fn gatekeeper_has_conditions_for_all_recorded_pairs() {
        let g = CommutativityGatekeeper::new(InterfaceId::Set);
        for first in ["add", "contains", "remove", "size"] {
            for second in ["add", "contains", "remove", "size"] {
                assert!(g.condition(first, second).is_some(), "{first}/{second}");
            }
        }
        assert_eq!(g.interface(), InterfaceId::Set);
    }

    #[test]
    fn pre_state_is_required_only_where_a_condition_reads_s1() {
        let g = CommutativityGatekeeper::new(InterfaceId::Set);
        // add/* and contains/* between conditions test `r1`, not `s1`.
        assert!(!g.requires_pre_state("add"));
        assert!(!g.requires_pre_state("contains"));
        // remove/contains and size/add read `s1` membership.
        assert!(g.requires_pre_state("remove"));
        assert!(g.requires_pre_state("size"));
    }

    #[test]
    fn distinct_elements_commute_same_element_conflicts() {
        let g = CommutativityGatekeeper::new(InterfaceId::Set);
        let mut log = OperationLog::new();
        // Transaction 1 added element 5, which was new (result = true).
        log.record(set_entry(1, "add", 5, true, &[]));

        // Transaction 2 adding a different element commutes.
        assert!(g.admit(&log, 2, "add", &[Value::elem(7)]).is_ok());
        // Transaction 2 removing the element transaction 1 just added does
        // not commute.
        let conflict = match g.admit(&log, 2, "remove", &[Value::elem(5)]) {
            Err(AdmissionError::Conflict(c)) => c,
            other => panic!("expected a conflict, got {other:?}"),
        };
        assert_eq!(conflict.with_txn, 1);
        assert_eq!(conflict.logged_op, "add");
        assert!(conflict.to_string().contains("does not commute"));
        // The same transaction is never in conflict with itself.
        assert!(g.admit(&log, 1, "remove", &[Value::elem(5)]).is_ok());
    }

    #[test]
    fn contains_conflicts_only_when_observation_would_change() {
        let g = CommutativityGatekeeper::new(InterfaceId::Set);
        let mut log = OperationLog::new();
        // Transaction 1 observed that 3 was present (result = true, and 3 was
        // in the pre-state).
        log.record(set_entry(1, "contains", 3, true, &[3]));
        // Adding 3 again commutes (it was already present).
        assert!(g.admit(&log, 2, "add", &[Value::elem(3)]).is_ok());
        // Removing 3 would invalidate the observation.
        assert!(g.admit(&log, 2, "remove", &[Value::elem(3)]).is_err());
    }

    #[test]
    fn map_gatekeeper_uses_key_based_conditions() {
        let g = CommutativityGatekeeper::new(InterfaceId::Map);
        let mut log = OperationLog::new();
        log.record(LogEntry {
            txn: 1,
            op: "put".into(),
            args: vec![Value::elem(1), Value::elem(10)],
            result: Some(Value::null()),
            pre_state: Some(AbstractState::Map(Default::default()).to_value()),
        });
        // A put to a different key commutes.
        assert!(g
            .admit(&log, 2, "put", &[Value::elem(2), Value::elem(20)])
            .is_ok());
        // A get of the same key does not.
        assert!(matches!(
            g.admit(&log, 2, "get", &[Value::elem(1)]),
            Err(AdmissionError::Conflict(_))
        ));
    }

    #[test]
    fn unknown_pairs_are_evaluation_errors_not_conflicts() {
        let g = CommutativityGatekeeper::new(InterfaceId::Set);
        let mut log = OperationLog::new();
        log.record(set_entry(1, "add", 5, true, &[]));
        // An operation the catalog knows nothing about must fail loudly, not
        // read as "does not commute".
        let err = g
            .admit(&log, 2, "frobnicate", &[Value::elem(5)])
            .unwrap_err();
        match err {
            AdmissionError::Evaluation(msg) => {
                assert!(
                    msg.contains("no condition for pair add/frobnicate"),
                    "{msg}"
                );
            }
            AdmissionError::Conflict(_) => panic!("evaluation failure misreported as conflict"),
        }
    }

    #[test]
    fn missing_required_pre_state_is_an_evaluation_error() {
        let g = CommutativityGatekeeper::new(InterfaceId::Set);
        let mut log = OperationLog::new();
        let mut entry = set_entry(1, "size", 0, true, &[]);
        entry.args = vec![];
        entry.result = Some(Value::Int(0));
        entry.pre_state = None; // size/add reads s1 — this entry is unusable.
        log.record(entry);
        assert!(matches!(
            g.admit(&log, 2, "add", &[Value::elem(1)]),
            Err(AdmissionError::Evaluation(_))
        ));
    }
}
