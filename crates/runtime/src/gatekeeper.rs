//! The commutativity gatekeeper: dynamic conflict detection using the
//! verified between conditions.
//!
//! # Admission backends
//!
//! The gatekeeper can evaluate a between condition two ways:
//!
//! * [`AdmitBackend::Bytecode`] (the default) compiles the condition formula
//!   **once per runtime** into a flat register [`Program`] via
//!   [`Program::lower_formula`] with a fixed slot layout — `s1`, `r1`, the
//!   first operation's canonical argument names, then the second's — and
//!   evaluates admissions through the program with reusable thread-local
//!   register buffers. No `Model`, no `HashMap`, no term-tree walk on the
//!   hot path.
//! * [`AdmitBackend::Interp`] builds a fresh [`Model`] per check and walks
//!   the term tree with [`eval_bool`] — the reference semantics, kept as the
//!   differential oracle (`tests/diff_gatekeeper.rs` pins the two backends
//!   against each other across the whole catalog).
//!
//! Programs are compiled lazily on first use of each (logged-op,
//! incoming-op) pair and shared across clones of the gatekeeper, so a
//! runtime pays for exactly the pairs its workload exercises, once.
//! Verdicts and the [`Conflict`] vs [`Evaluation`](AdmissionError::Evaluation)
//! classification are identical under both backends; only the wording of
//! low-level evaluation errors may differ (the compiled executor reports
//! registers, the interpreter reports variable names).
//!
//! The `SEMCOMMUTE_ADMIT` environment variable (`bytecode` | `interp`)
//! selects the process-wide default backend, mirroring the prover's
//! `SEMCOMMUTE_BYTECODE` knob.
//!
//! # Two anchors per state-reading condition
//!
//! A between condition whose formula reads the abstract state `s1` is
//! evaluated at **two** anchors:
//!
//! * against the logged entry's **captured pre-state**
//!   ([`check_entry`](CommutativityGatekeeper::check_entry) /
//!   [`check_indexed`](CommutativityGatekeeper::check_indexed)) — the exact
//!   certificate for swapping the pair adjacent at the state the logged
//!   operation executed in, evaluable lock-free because it reads only
//!   immutable log data; and
//! * against the **live state** under the structure lock
//!   ([`check_entry_at`](CommutativityGatekeeper::check_entry_at) /
//!   [`check_indexed_at`](CommutativityGatekeeper::check_indexed_at)) — the
//!   re-anchor that makes per-pair certificates compose once other admitted
//!   operations separate the pair (see the method docs for the failure this
//!   closes).
//!
//! State-free conditions (the majority — they test `r1` and arguments) have
//! a single anchor; their re-anchored evaluation is skipped as a no-op.

use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::{Arc, OnceLock};

use semcommute_core::condition::names;
use semcommute_core::{interface_catalog, CommutativityCondition, ConditionKind};
use semcommute_logic::{eval_bool, free_vars, Model, Value};
use semcommute_prover::Program;
use semcommute_spec::InterfaceId;

use crate::log::{LogEntry, OperationLog};

/// A detected conflict: the incoming operation does not semantically commute
/// with an operation another in-flight transaction has already executed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Conflict {
    /// The transaction whose logged operation the incoming operation
    /// conflicts with.
    pub with_txn: u64,
    /// The logged operation.
    pub logged_op: String,
    /// The incoming operation.
    pub incoming_op: String,
}

impl Conflict {
    /// The conflicting operation pair as `(incoming, logged)` — the compact
    /// form retry diagnostics report.
    pub fn op_pair(&self) -> (&str, &str) {
        (&self.incoming_op, &self.logged_op)
    }
}

impl fmt::Display for Conflict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "`{}` does not commute with `{}` executed by transaction {}",
            self.incoming_op, self.logged_op, self.with_txn
        )
    }
}

/// Why the gatekeeper refused to admit an operation.
///
/// The two cases call for opposite reactions, which is why they are distinct:
/// a [`Conflict`] is the ordinary speculative outcome — the transaction
/// aborts, rolls back, and retrying is likely to succeed once the conflicting
/// transaction finishes. An [`Evaluation`](AdmissionError::Evaluation) error
/// means the check itself could not be performed (no condition is registered
/// for the operation pair, or the condition references information the log
/// entry does not carry). Retrying cannot fix that, so masking it as a
/// conflict — as the runtime did before — turns a configuration bug into a
/// retry loop that ends in a misleading "retries exhausted" report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmissionError {
    /// The operations genuinely do not commute; abort and retry.
    Conflict(Conflict),
    /// The commutativity check could not be evaluated; not retryable.
    Evaluation(String),
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionError::Conflict(c) => write!(f, "{c}"),
            AdmissionError::Evaluation(e) => write!(f, "condition evaluation failed: {e}"),
        }
    }
}

/// How the gatekeeper evaluates between conditions (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitBackend {
    /// Flat register programs compiled once per runtime (the default).
    Bytecode,
    /// The reference `Model`-building term-tree interpreter.
    Interp,
}

impl AdmitBackend {
    /// Parses a `SEMCOMMUTE_ADMIT` setting. `interp` (or `model` / `tree`)
    /// selects the interpreter; anything else — including unset — selects the
    /// compiled backend.
    pub fn parse(setting: Option<&str>) -> AdmitBackend {
        match setting {
            Some("interp" | "model" | "tree") => AdmitBackend::Interp,
            _ => AdmitBackend::Bytecode,
        }
    }

    /// The process-wide default backend: the `SEMCOMMUTE_ADMIT` environment
    /// variable, read once.
    pub fn default_backend() -> AdmitBackend {
        static DEFAULT: OnceLock<AdmitBackend> = OnceLock::new();
        *DEFAULT
            .get_or_init(|| AdmitBackend::parse(std::env::var("SEMCOMMUTE_ADMIT").ok().as_deref()))
    }
}

/// Where each input slot of a compiled admission program gets its value from
/// at evaluation time.
#[derive(Debug, Clone, Copy)]
enum SlotSrc {
    /// The logged entry's pre-state projection (`s1`).
    Initial,
    /// The logged entry's recorded return value (`r1`).
    Result1,
    /// Argument `i` of the logged (first) operation.
    FirstArg(usize),
    /// Argument `i` of the incoming (second) operation.
    SecondArg(usize),
}

/// A between condition compiled to a flat register program with the
/// admission slot layout: slot 0 is `s1`, slot 1 is `r1`, then the first
/// operation's canonical argument names, then the second's. Built once per
/// (logged-op, incoming-op) pair and shared by every clone of the gatekeeper.
#[derive(Debug)]
struct AdmissionProgram {
    program: Program,
    /// Per input slot: where its value comes from, and its canonical variable
    /// name (for `unbound variable` error messages matching the interpreter).
    slots: Vec<(SlotSrc, String)>,
    /// Per input slot: whether the compiled program actually reads it.
    /// Unread slots take a placeholder; read-but-unavailable slots are
    /// evaluation errors — exactly when the interpreter's `Model` lookup
    /// would have failed.
    reads: Vec<bool>,
    /// `reads[0]`: does the program read the pre-state slot `s1`?
    reads_initial: bool,
}

thread_local! {
    /// Reusable per-thread register buffer for compiled admission. Sound
    /// across programs because every register an execution reads is
    /// rewritten before the read (constants and read input slots per call,
    /// SSA temporaries by the instruction stream); unread input slots may
    /// hold stale values from a previous program, which no instruction ever
    /// touches.
    static ADMIT_REGS: RefCell<Vec<Value>> = const { RefCell::new(Vec::new()) };
}

impl AdmissionProgram {
    fn compile(
        condition: &CommutativityCondition,
        first_params: &[String],
        second_params: &[String],
    ) -> AdmissionProgram {
        let mut slots = vec![
            (SlotSrc::Initial, names::INITIAL.to_string()),
            (SlotSrc::Result1, names::RESULT1.to_string()),
        ];
        for (i, name) in first_params.iter().enumerate() {
            slots.push((SlotSrc::FirstArg(i), name.clone()));
        }
        for (i, name) in second_params.iter().enumerate() {
            slots.push((SlotSrc::SecondArg(i), name.clone()));
        }
        let order: Vec<String> = slots.iter().map(|(_, name)| name.clone()).collect();
        let program = Program::lower_formula(&condition.formula, &order);
        let reads = program.input_reads();
        let reads_initial = reads[0];
        AdmissionProgram {
            program,
            slots,
            reads,
            reads_initial,
        }
    }

    /// Evaluates the condition on one logged entry and the incoming
    /// arguments, through the thread-local register buffers. When `state` is
    /// provided it overrides the logged entry's captured pre-state as the
    /// `s1` binding (the re-anchored evaluation — see
    /// [`CommutativityGatekeeper::check_entry_at`]). Errors are raw (the
    /// caller prefixes the condition id, as the interpreter path does).
    fn eval(
        &self,
        logged: &LogEntry,
        incoming_args: &[Value],
        state: Option<&Value>,
    ) -> Result<bool, String> {
        ADMIT_REGS.with(|regs| {
            let regs = &mut *regs.borrow_mut();
            self.program.prepare_regs(regs);
            for (slot, (src, name)) in self.slots.iter().enumerate() {
                if !self.reads[slot] {
                    // Never read by the program: no write needed, the
                    // register is dead.
                    continue;
                }
                let found = match src {
                    SlotSrc::Initial => state.or(logged.pre_state.as_ref()),
                    SlotSrc::Result1 => logged.result.as_ref(),
                    SlotSrc::FirstArg(i) => logged.args.get(*i),
                    SlotSrc::SecondArg(i) => incoming_args.get(*i),
                };
                match found {
                    Some(v) => regs[slot] = v.clone(),
                    // The interpreter would not have inserted this name
                    // into the model, so its formula walk would fail the
                    // lookup; reproduce that error here.
                    None => return Err(format!("unbound variable `{name}`")),
                }
            }
            self.program.eval_in_regs(regs)
        })
    }
}

/// A between condition prepared for repeated run-time evaluation: the
/// canonical argument-variable names are resolved against the interface
/// specification once, and the formula's state requirements are precomputed,
/// so the per-admission work is a handful of O(1) model insertions plus the
/// formula walk (interpreter backend) or a slot fill plus a flat register
/// program run (bytecode backend).
#[derive(Debug, Clone)]
struct Prepared {
    condition: CommutativityCondition,
    /// Canonical names (`v1`, `k1`, …) for the first operation's arguments.
    first_params: Vec<String>,
    /// Canonical names (`v2`, `k2`, …) for the second operation's arguments.
    second_params: Vec<String>,
    /// Whether the formula mentions the initial state `s1` (syntactic
    /// free-variable scan — the interpreter backend's projection).
    needs_initial: bool,
    /// The compiled admission program, built lazily on first use and shared
    /// across clones of the gatekeeper (`Arc`): the once-per-runtime cache.
    program: Arc<OnceLock<AdmissionProgram>>,
}

impl Prepared {
    fn program(&self) -> &AdmissionProgram {
        self.program.get_or_init(|| {
            AdmissionProgram::compile(&self.condition, &self.first_params, &self.second_params)
        })
    }
}

/// Dynamic commutativity checking for one interface.
///
/// The gatekeeper holds the *between* conditions of the interface (for the
/// recorded variants — the runtime always records return values so that
/// inverse operations can be applied later) and evaluates them against the
/// run-time information captured in the operation log. This is the
/// "forward gatekeeper" usage scenario of the paper's related-work
/// discussion: before executing an operation, check that it commutes with
/// every operation executed by other uncommitted transactions.
///
/// Construction also computes, per first operation, whether *any* of its
/// between conditions reads the initial state `s1`; the executor consults
/// [`requires_pre_state`](CommutativityGatekeeper::requires_pre_state) to
/// decide whether a pre-state projection must be captured when logging the
/// operation. Most recorded-variant conditions test `r1` instead, so most
/// operations log no state at all. Under the bytecode backend this
/// projection is derived from the compiled programs' actual slot reads (and
/// memoized per operation); the interpreter backend uses the syntactic
/// free-variable scan. The two projections agree across the whole catalog —
/// `tests/diff_runtime.rs` asserts it pair by pair.
#[derive(Debug, Clone)]
pub struct CommutativityGatekeeper {
    interface: InterfaceId,
    backend: AdmitBackend,
    /// Prepared between conditions for recorded variants, keyed by first
    /// operation, then second operation (two `&str` lookups, no allocation
    /// on the admission path).
    conditions: HashMap<String, HashMap<String, Prepared>>,
    /// First operations at least one of whose between conditions mentions
    /// `s1` — the only operations whose log entries need a pre-state
    /// (interpreter projection).
    pre_state_ops: HashSet<String>,
    /// Per first operation, the memoized bytecode projection: does any
    /// compiled condition with this operation first read the `s1` slot?
    /// Shared across clones, filled on first
    /// [`requires_pre_state`](CommutativityGatekeeper::requires_pre_state)
    /// query for the operation.
    pre_state_compiled: HashMap<String, Arc<OnceLock<bool>>>,
    /// The dense operation universe for index-based admission: the
    /// interface's operation names in specification order.
    /// [`op_index`](CommutativityGatekeeper::op_index) resolves a name once
    /// (at publish time for logged entries, once per admission batch for the
    /// incoming operation); after that the hot path never hashes a string.
    ops: Vec<String>,
    /// The flattened (first × second) pair table, indexed
    /// `first * ops.len() + second`. Entries share the same lazily-compiled
    /// [`AdmissionProgram`]s as `conditions` (same `Arc`).
    table: Vec<Option<Prepared>>,
}

impl CommutativityGatekeeper {
    /// Builds the gatekeeper for an interface from the verified catalog,
    /// using the process-wide default admission backend.
    pub fn new(interface: InterfaceId) -> CommutativityGatekeeper {
        CommutativityGatekeeper::with_backend(interface, AdmitBackend::default_backend())
    }

    /// Builds the gatekeeper with an explicit admission backend.
    pub fn with_backend(interface: InterfaceId, backend: AdmitBackend) -> CommutativityGatekeeper {
        let iface = semcommute_spec::interface_by_id(interface);
        let mut conditions: HashMap<String, HashMap<String, Prepared>> = HashMap::new();
        let mut pre_state_ops = HashSet::new();
        let mut pre_state_compiled = HashMap::new();
        for condition in interface_catalog(interface) {
            if condition.kind != ConditionKind::Between
                || !condition.first.recorded
                || !condition.second.recorded
            {
                continue;
            }
            let params = |op: &str, which: usize| -> Vec<String> {
                iface.op(op).map_or_else(Vec::new, |spec| {
                    spec.params
                        .iter()
                        .map(|(formal, _)| names::arg(formal, which))
                        .collect()
                })
            };
            let needs_initial = free_vars(&condition.formula).contains_key(names::INITIAL);
            if needs_initial {
                pre_state_ops.insert(condition.first.op.clone());
            }
            pre_state_compiled
                .entry(condition.first.op.clone())
                .or_insert_with(|| Arc::new(OnceLock::new()));
            let prepared = Prepared {
                first_params: params(&condition.first.op, 1),
                second_params: params(&condition.second.op, 2),
                needs_initial,
                program: Arc::new(OnceLock::new()),
                condition,
            };
            conditions
                .entry(prepared.condition.first.op.clone())
                .or_default()
                .insert(prepared.condition.second.op.clone(), prepared);
        }
        let ops: Vec<String> = iface.ops.iter().map(|op| op.name.clone()).collect();
        let table: Vec<Option<Prepared>> = ops
            .iter()
            .flat_map(|first| {
                ops.iter().map(|second| {
                    conditions
                        .get(first)
                        .and_then(|seconds| seconds.get(second))
                        .cloned()
                })
            })
            .collect();
        CommutativityGatekeeper {
            interface,
            backend,
            conditions,
            pre_state_ops,
            pre_state_compiled,
            ops,
            table,
        }
    }

    /// The interface this gatekeeper serves.
    pub fn interface(&self) -> InterfaceId {
        self.interface
    }

    /// The admission backend this gatekeeper evaluates conditions with.
    pub fn backend(&self) -> AdmitBackend {
        self.backend
    }

    /// The between condition for an ordered operation pair.
    pub fn condition(&self, first_op: &str, second_op: &str) -> Option<&CommutativityCondition> {
        self.conditions
            .get(first_op)
            .and_then(|seconds| seconds.get(second_op))
            .map(|p| &p.condition)
    }

    /// Every ordered (first, second) operation pair this gatekeeper holds a
    /// between condition for, in unspecified order. Differential harnesses
    /// iterate this to cover the whole catalog.
    pub fn pairs(&self) -> Vec<(String, String)> {
        let mut pairs: Vec<(String, String)> = self
            .conditions
            .iter()
            .flat_map(|(first, seconds)| {
                seconds
                    .keys()
                    .map(move |second| (first.clone(), second.clone()))
            })
            .collect();
        pairs.sort();
        pairs
    }

    /// For one pair's condition, the two pre-state projections: does the
    /// formula mention `s1` syntactically (interpreter backend), and does
    /// the compiled program actually read the `s1` slot (bytecode backend)?
    /// `None` if the pair is unknown. The differential harness asserts the
    /// two always agree.
    pub fn pair_pre_state_projection(
        &self,
        first_op: &str,
        second_op: &str,
    ) -> Option<(bool, bool)> {
        self.conditions
            .get(first_op)
            .and_then(|seconds| seconds.get(second_op))
            .map(|p| (p.needs_initial, p.program().reads_initial))
    }

    /// Must a log entry for `op` (as the *first* operation of a later
    /// between check) carry the abstract pre-state?
    ///
    /// Returns `true` iff some between condition with `op` first reads the
    /// initial state `s1` — under the bytecode backend, *reads* means the
    /// compiled program consumes the `s1` input slot; under the interpreter
    /// backend, that the formula mentions `s1`. The executor captures the
    /// (O(1), persistent) state projection only for these operations.
    pub fn requires_pre_state(&self, op: &str) -> bool {
        match self.backend {
            AdmitBackend::Interp => self.pre_state_ops.contains(op),
            AdmitBackend::Bytecode => match self.pre_state_compiled.get(op) {
                None => false,
                Some(memo) => *memo.get_or_init(|| {
                    self.conditions
                        .get(op)
                        .is_some_and(|seconds| seconds.values().any(|p| p.program().reads_initial))
                }),
            },
        }
    }

    /// Does the incoming operation commute with one logged operation?
    ///
    /// # Errors
    ///
    /// Returns an error if the pair is unknown or the condition cannot be
    /// evaluated from the logged information.
    pub fn commutes_with(
        &self,
        logged: &LogEntry,
        incoming_op: &str,
        incoming_args: &[Value],
    ) -> Result<bool, String> {
        let prepared = self
            .conditions
            .get(logged.op.as_str())
            .and_then(|seconds| seconds.get(incoming_op))
            .ok_or_else(|| format!("no condition for pair {}/{incoming_op}", logged.op))?;
        self.eval_prepared(prepared, logged, incoming_args, None)
    }

    /// Evaluates one prepared condition under this gatekeeper's backend.
    /// `state`, when provided, overrides the logged entry's captured
    /// pre-state as the `s1` binding.
    fn eval_prepared(
        &self,
        prepared: &Prepared,
        logged: &LogEntry,
        incoming_args: &[Value],
        state: Option<&Value>,
    ) -> Result<bool, String> {
        match self.backend {
            AdmitBackend::Bytecode => {
                let program = prepared.program();
                if program.reads_initial && state.is_none() && logged.pre_state.is_none() {
                    return Err(missing_pre_state(prepared, logged));
                }
                program
                    .eval(logged, incoming_args, state)
                    .map_err(|e| format!("{}: {e}", prepared.condition.id()))
            }
            AdmitBackend::Interp => {
                let mut model = Model::new();
                if prepared.needs_initial {
                    match state.or(logged.pre_state.as_ref()) {
                        Some(state) => model.insert(names::INITIAL, state.clone()),
                        None => return Err(missing_pre_state(prepared, logged)),
                    };
                }
                if let Some(result) = &logged.result {
                    model.insert(names::RESULT1, result.clone());
                }
                for (name, value) in prepared.first_params.iter().zip(&logged.args) {
                    model.insert(name.clone(), value.clone());
                }
                for (name, value) in prepared.second_params.iter().zip(incoming_args) {
                    model.insert(name.clone(), value.clone());
                }
                eval_bool(&prepared.condition.formula, &model)
                    .map_err(|e| format!("{}: {e}", prepared.condition.id()))
            }
        }
    }

    /// Resolves an operation name to its dense index in this gatekeeper's
    /// operation universe, or `None` if the interface does not know the
    /// operation. The executor resolves each logged operation once at publish
    /// time and each incoming operation once per admission batch, so
    /// [`check_indexed`](CommutativityGatekeeper::check_indexed) never hashes
    /// a string.
    pub fn op_index(&self, op: &str) -> Option<u16> {
        self.ops
            .iter()
            .position(|name| name == op)
            .map(|i| i as u16)
    }

    /// [`check_entry`](CommutativityGatekeeper::check_entry) with both
    /// operations pre-resolved via
    /// [`op_index`](CommutativityGatekeeper::op_index) — the no-string-lookup
    /// hot path. Behaves identically to `check_entry` for known operations
    /// (indices must come from this gatekeeper's `op_index`).
    ///
    /// # Errors
    ///
    /// See [`admit`](CommutativityGatekeeper::admit).
    pub fn check_indexed(
        &self,
        first: u16,
        logged: &LogEntry,
        second: u16,
        incoming_op: &str,
        incoming_args: &[Value],
    ) -> Result<(), AdmissionError> {
        match &self.table[first as usize * self.ops.len() + second as usize] {
            Some(prepared) => self.classify(prepared, logged, incoming_op, incoming_args, None),
            None => Err(AdmissionError::Evaluation(format!(
                "no condition for pair {}/{incoming_op}",
                logged.op
            ))),
        }
    }

    /// The **re-anchored** form of
    /// [`check_indexed`](CommutativityGatekeeper::check_indexed): evaluates
    /// the pair's condition with the initial state `s1` bound to `state`
    /// (the live abstract state, read under the structure lock) instead of
    /// the logged entry's captured pre-state.
    ///
    /// A condition certified against the captured pre-state certifies
    /// swapping the pair adjacent *at that state*; once other admitted
    /// operations separate the pair, individually-valid certificates need
    /// not compose. Requiring the condition to also hold at the live state
    /// keeps every logged, state-dependent certificate current at each
    /// intermediate state, so the certificates compose inductively (see the
    /// executor's `check_against_locked`).
    ///
    /// Pairs whose condition never reads `s1` — the majority; they test `r1`
    /// and arguments — are admitted without evaluation: re-running a
    /// state-free formula would reproduce the verdict `check_indexed`
    /// already delivered.
    ///
    /// # Errors
    ///
    /// See [`admit`](CommutativityGatekeeper::admit).
    pub fn check_indexed_at(
        &self,
        first: u16,
        logged: &LogEntry,
        second: u16,
        incoming_op: &str,
        incoming_args: &[Value],
        state: &Value,
    ) -> Result<(), AdmissionError> {
        match &self.table[first as usize * self.ops.len() + second as usize] {
            Some(prepared) => {
                if !self.reads_state(prepared) {
                    return Ok(());
                }
                self.classify(prepared, logged, incoming_op, incoming_args, Some(state))
            }
            None => Err(AdmissionError::Evaluation(format!(
                "no condition for pair {}/{incoming_op}",
                logged.op
            ))),
        }
    }

    /// Does this pair's condition read the abstract state `s1` under the
    /// active backend? (Compiled slot read for bytecode, syntactic
    /// free-variable scan for the interpreter — the differential harness
    /// pins the two projections against each other.)
    fn reads_state(&self, prepared: &Prepared) -> bool {
        match self.backend {
            AdmitBackend::Interp => prepared.needs_initial,
            AdmitBackend::Bytecode => prepared.program().reads_initial,
        }
    }

    /// Translates one condition evaluation into an admission verdict.
    fn classify(
        &self,
        prepared: &Prepared,
        logged: &LogEntry,
        incoming_op: &str,
        incoming_args: &[Value],
        state: Option<&Value>,
    ) -> Result<(), AdmissionError> {
        match self.eval_prepared(prepared, logged, incoming_args, state) {
            Ok(true) => Ok(()),
            Ok(false) => Err(AdmissionError::Conflict(Conflict {
                with_txn: logged.txn,
                logged_op: logged.op.clone(),
                incoming_op: incoming_op.to_string(),
            })),
            Err(e) => Err(AdmissionError::Evaluation(e)),
        }
    }

    /// Checks an incoming operation of transaction `txn` against every logged
    /// operation of *other* transactions.
    ///
    /// # Errors
    ///
    /// Returns the first [`Conflict`] found, or
    /// [`AdmissionError::Evaluation`] if a condition could not be evaluated —
    /// the latter is **not** a conflict and must not be retried (see
    /// [`AdmissionError`]).
    pub fn admit(
        &self,
        log: &OperationLog,
        txn: u64,
        incoming_op: &str,
        incoming_args: &[Value],
    ) -> Result<(), AdmissionError> {
        for logged in log.entries_of_others(txn) {
            self.check_entry(logged, incoming_op, incoming_args)?;
        }
        Ok(())
    }

    /// Checks an incoming operation against one logged entry of another
    /// transaction, classifying the outcome as admissible, [`Conflict`], or
    /// an evaluation failure.
    ///
    /// # Errors
    ///
    /// See [`admit`](CommutativityGatekeeper::admit).
    pub fn check_entry(
        &self,
        logged: &LogEntry,
        incoming_op: &str,
        incoming_args: &[Value],
    ) -> Result<(), AdmissionError> {
        match self.lookup(logged, incoming_op) {
            Ok(prepared) => self.classify(prepared, logged, incoming_op, incoming_args, None),
            Err(e) => Err(e),
        }
    }

    /// The re-anchored form of
    /// [`check_entry`](CommutativityGatekeeper::check_entry) — see
    /// [`check_indexed_at`](CommutativityGatekeeper::check_indexed_at).
    ///
    /// # Errors
    ///
    /// See [`admit`](CommutativityGatekeeper::admit).
    pub fn check_entry_at(
        &self,
        logged: &LogEntry,
        incoming_op: &str,
        incoming_args: &[Value],
        state: &Value,
    ) -> Result<(), AdmissionError> {
        match self.lookup(logged, incoming_op) {
            Ok(prepared) => {
                if !self.reads_state(prepared) {
                    return Ok(());
                }
                self.classify(prepared, logged, incoming_op, incoming_args, Some(state))
            }
            Err(e) => Err(e),
        }
    }

    /// Resolves the prepared condition for a (logged, incoming) pair by
    /// operation name.
    fn lookup(&self, logged: &LogEntry, incoming_op: &str) -> Result<&Prepared, AdmissionError> {
        self.conditions
            .get(logged.op.as_str())
            .and_then(|seconds| seconds.get(incoming_op))
            .ok_or_else(|| {
                AdmissionError::Evaluation(format!(
                    "no condition for pair {}/{incoming_op}",
                    logged.op
                ))
            })
    }
}

/// The entry carries no pre-state but the condition reads `s1` — the same
/// message under both backends (it is raised before evaluation starts).
fn missing_pre_state(prepared: &Prepared, logged: &LogEntry) -> String {
    format!(
        "{}: entry for `{}` carries no pre-state but the condition reads `{}`",
        prepared.condition.id(),
        logged.op,
        names::INITIAL,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use semcommute_logic::Sort;
    use semcommute_spec::AbstractState;

    const BACKENDS: [AdmitBackend; 2] = [AdmitBackend::Bytecode, AdmitBackend::Interp];

    fn set_entry(txn: u64, op: &str, arg: u32, result: bool, state: &[u32]) -> LogEntry {
        LogEntry {
            txn,
            op: op.to_string(),
            args: vec![Value::elem(arg)],
            result: Some(Value::Bool(result)),
            pre_state: Some(
                AbstractState::Set(state.iter().map(|&i| semcommute_logic::ElemId(i)).collect())
                    .to_value(),
            ),
        }
    }

    #[test]
    fn gatekeeper_has_conditions_for_all_recorded_pairs() {
        let g = CommutativityGatekeeper::new(InterfaceId::Set);
        for first in ["add", "contains", "remove", "size"] {
            for second in ["add", "contains", "remove", "size"] {
                assert!(g.condition(first, second).is_some(), "{first}/{second}");
            }
        }
        assert_eq!(g.interface(), InterfaceId::Set);
        assert_eq!(g.backend(), AdmitBackend::default_backend());
    }

    #[test]
    fn admit_backend_parsing() {
        assert_eq!(AdmitBackend::parse(None), AdmitBackend::Bytecode);
        assert_eq!(
            AdmitBackend::parse(Some("bytecode")),
            AdmitBackend::Bytecode
        );
        assert_eq!(AdmitBackend::parse(Some("interp")), AdmitBackend::Interp);
        assert_eq!(AdmitBackend::parse(Some("model")), AdmitBackend::Interp);
        assert_eq!(AdmitBackend::parse(Some("tree")), AdmitBackend::Interp);
    }

    #[test]
    fn pre_state_is_required_only_where_a_condition_reads_s1() {
        for backend in BACKENDS {
            let g = CommutativityGatekeeper::with_backend(InterfaceId::Set, backend);
            // add/* and contains/* between conditions test `r1`, not `s1`.
            assert!(!g.requires_pre_state("add"), "{backend:?}");
            assert!(!g.requires_pre_state("contains"), "{backend:?}");
            // remove/contains and size/add read `s1` membership.
            assert!(g.requires_pre_state("remove"), "{backend:?}");
            assert!(g.requires_pre_state("size"), "{backend:?}");
        }
    }

    #[test]
    fn distinct_elements_commute_same_element_conflicts() {
        for backend in BACKENDS {
            let g = CommutativityGatekeeper::with_backend(InterfaceId::Set, backend);
            let mut log = OperationLog::new();
            // Transaction 1 added element 5, which was new (result = true).
            log.record(set_entry(1, "add", 5, true, &[]));

            // Transaction 2 adding a different element commutes.
            assert!(g.admit(&log, 2, "add", &[Value::elem(7)]).is_ok());
            // Transaction 2 removing the element transaction 1 just added
            // does not commute.
            let conflict = match g.admit(&log, 2, "remove", &[Value::elem(5)]) {
                Err(AdmissionError::Conflict(c)) => c,
                other => panic!("expected a conflict, got {other:?}"),
            };
            assert_eq!(conflict.with_txn, 1);
            assert_eq!(conflict.logged_op, "add");
            assert!(conflict.to_string().contains("does not commute"));
            // The same transaction is never in conflict with itself.
            assert!(g.admit(&log, 1, "remove", &[Value::elem(5)]).is_ok());
        }
    }

    #[test]
    fn contains_conflicts_only_when_observation_would_change() {
        for backend in BACKENDS {
            let g = CommutativityGatekeeper::with_backend(InterfaceId::Set, backend);
            let mut log = OperationLog::new();
            // Transaction 1 observed that 3 was present (result = true, and 3
            // was in the pre-state).
            log.record(set_entry(1, "contains", 3, true, &[3]));
            // Adding 3 again commutes (it was already present).
            assert!(g.admit(&log, 2, "add", &[Value::elem(3)]).is_ok());
            // Removing 3 would invalidate the observation.
            assert!(g.admit(&log, 2, "remove", &[Value::elem(3)]).is_err());
        }
    }

    #[test]
    fn map_gatekeeper_uses_key_based_conditions() {
        for backend in BACKENDS {
            let g = CommutativityGatekeeper::with_backend(InterfaceId::Map, backend);
            let mut log = OperationLog::new();
            log.record(LogEntry {
                txn: 1,
                op: "put".into(),
                args: vec![Value::elem(1), Value::elem(10)],
                result: Some(Value::null()),
                pre_state: Some(AbstractState::Map(Default::default()).to_value()),
            });
            // A put to a different key commutes.
            assert!(g
                .admit(&log, 2, "put", &[Value::elem(2), Value::elem(20)])
                .is_ok());
            // A get of the same key does not.
            assert!(matches!(
                g.admit(&log, 2, "get", &[Value::elem(1)]),
                Err(AdmissionError::Conflict(_))
            ));
        }
    }

    #[test]
    fn unknown_pairs_are_evaluation_errors_not_conflicts() {
        for backend in BACKENDS {
            let g = CommutativityGatekeeper::with_backend(InterfaceId::Set, backend);
            let mut log = OperationLog::new();
            log.record(set_entry(1, "add", 5, true, &[]));
            // An operation the catalog knows nothing about must fail loudly,
            // not read as "does not commute".
            let err = g
                .admit(&log, 2, "frobnicate", &[Value::elem(5)])
                .unwrap_err();
            match err {
                AdmissionError::Evaluation(msg) => {
                    assert!(
                        msg.contains("no condition for pair add/frobnicate"),
                        "{msg}"
                    );
                }
                AdmissionError::Conflict(_) => {
                    panic!("evaluation failure misreported as conflict")
                }
            }
        }
    }

    fn list_state(items: &[u32]) -> Value {
        AbstractState::List(items.iter().map(|&i| semcommute_logic::ElemId(i)).collect()).to_value()
    }

    /// The composition hole the re-anchor closes, at gatekeeper level: a
    /// logged `get(3)` over a run of duplicates admits a `removeAt(0)`
    /// against its *captured* pre-state (one left shift preserves the
    /// reading), but at a live state where earlier admissions already
    /// consumed the duplicate run, the same certificate must be refused.
    #[test]
    fn re_anchor_rejects_certificates_the_captured_pre_state_still_honors() {
        for backend in BACKENDS {
            let g = CommutativityGatekeeper::with_backend(InterfaceId::List, backend);
            let logged = LogEntry {
                txn: 1,
                op: "get".into(),
                args: vec![Value::Int(3)],
                result: Some(Value::elem(1)),
                pre_state: Some(list_state(&[1, 1, 1, 1, 1, 1, 10])),
            };
            let incoming = [Value::Int(0)];
            // Against the capture: s1[3] = s1[4], one shift is harmless.
            assert!(g.check_entry(&logged, "removeAt", &incoming).is_ok());
            // Re-anchored at a live state that still has the duplicate run:
            // also fine.
            assert!(g
                .check_entry_at(
                    &logged,
                    "removeAt",
                    &incoming,
                    &list_state(&[1, 1, 1, 1, 1, 10])
                )
                .is_ok());
            // Re-anchored at a live state where one more shift moves the 10
            // into the observed slot: conflict — even though the pre-state
            // check (above) still passes.
            let live = list_state(&[1, 1, 1, 1, 10]);
            assert!(matches!(
                g.check_entry_at(&logged, "removeAt", &incoming, &live),
                Err(AdmissionError::Conflict(_))
            ),);
            // The indexed hot path agrees.
            let first = g.op_index("get").unwrap();
            let second = g.op_index("removeAt").unwrap();
            assert!(matches!(
                g.check_indexed_at(first, &logged, second, "removeAt", &incoming, &live),
                Err(AdmissionError::Conflict(_))
            ));
        }
    }

    /// Pairs whose condition never reads `s1` have a single anchor: the
    /// re-anchored check is a no-op regardless of the state passed in — it
    /// must not re-deliver (or contradict) the pre-state verdict.
    #[test]
    fn re_anchor_is_a_no_op_for_state_free_pairs() {
        for backend in BACKENDS {
            let g = CommutativityGatekeeper::with_backend(InterfaceId::Set, backend);
            // add/remove between conditions test `r1`, not `s1`: removing
            // the element a live transaction just inserted conflicts…
            let logged = set_entry(1, "add", 5, true, &[]);
            assert!(matches!(
                g.check_entry(&logged, "remove", &[Value::elem(5)]),
                Err(AdmissionError::Conflict(_))
            ));
            // …but the *re-anchor* admits vacuously, whatever the state.
            let state = AbstractState::Set(Default::default()).to_value();
            assert!(g
                .check_entry_at(&logged, "remove", &[Value::elem(5)], &state)
                .is_ok());
            let first = g.op_index("add").unwrap();
            let second = g.op_index("remove").unwrap();
            assert!(g
                .check_indexed_at(first, &logged, second, "remove", &[Value::elem(5)], &state)
                .is_ok());
        }
    }

    /// A placeholder value of the given sort, for building well-formed log
    /// entries straight from the interface specification.
    fn default_value(sort: Sort) -> Value {
        match sort {
            Sort::Bool => Value::Bool(false),
            Sort::Int => Value::Int(0),
            Sort::Elem => Value::elem(1),
            Sort::Set => Value::set_of([semcommute_logic::ElemId(1)]),
            Sort::Map => {
                Value::map_of([(semcommute_logic::ElemId(1), semcommute_logic::ElemId(1))])
            }
            Sort::Seq => Value::seq_of([semcommute_logic::ElemId(1)]),
        }
    }

    /// Table-driven over **all** interfaces and both backends: for every
    /// catalog pair whose condition reads `s1`, a log entry without a
    /// pre-state must classify as a (non-retryable) evaluation error, never
    /// as a conflict. Driving this from the catalog itself means an interface
    /// or condition added later cannot silently skip the check.
    #[test]
    fn missing_required_pre_state_is_an_evaluation_error() {
        let mut exercised = 0u32;
        for interface in InterfaceId::ALL {
            let iface = semcommute_spec::interface_by_id(interface);
            let args_of = |op: &str| -> Vec<Value> {
                iface.op(op).map_or_else(Vec::new, |spec| {
                    spec.params
                        .iter()
                        .map(|(_, sort)| default_value(*sort))
                        .collect()
                })
            };
            for backend in BACKENDS {
                let g = CommutativityGatekeeper::with_backend(interface, backend);
                for (first, second) in g.pairs() {
                    let (needs_s1, _) = g.pair_pre_state_projection(&first, &second).unwrap();
                    if !needs_s1 {
                        continue;
                    }
                    let mut log = OperationLog::new();
                    log.record(LogEntry {
                        txn: 1,
                        op: first.clone(),
                        args: args_of(&first),
                        result: iface
                            .op(&first)
                            .and_then(|s| s.result_sort)
                            .map(default_value),
                        pre_state: None, // the condition reads s1 — unusable.
                    });
                    match g.admit(&log, 2, &second, &args_of(&second)) {
                        Err(AdmissionError::Evaluation(msg)) => {
                            assert!(
                                msg.contains("carries no pre-state"),
                                "{interface}/{first}/{second} ({backend:?}): {msg}"
                            );
                        }
                        other => panic!(
                            "{interface}/{first}/{second} ({backend:?}): expected an \
                             evaluation error, got {other:?}"
                        ),
                    }
                    exercised += 1;
                }
            }
        }
        assert!(
            exercised > 0,
            "no catalog between condition reads s1 — the table is empty"
        );
    }
}
