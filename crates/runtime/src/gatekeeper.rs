//! The commutativity gatekeeper: dynamic conflict detection using the
//! verified between conditions.

use std::collections::HashMap;
use std::fmt;

use semcommute_core::concrete::{evaluate, ConditionContext};
use semcommute_core::{interface_catalog, CommutativityCondition, ConditionKind};
use semcommute_logic::Value;
use semcommute_spec::InterfaceId;

use crate::log::{LogEntry, OperationLog};

/// A detected conflict: the incoming operation does not semantically commute
/// with an operation another in-flight transaction has already executed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Conflict {
    /// The transaction whose logged operation the incoming operation
    /// conflicts with.
    pub with_txn: u64,
    /// The logged operation.
    pub logged_op: String,
    /// The incoming operation.
    pub incoming_op: String,
}

impl fmt::Display for Conflict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "`{}` does not commute with `{}` executed by transaction {}",
            self.incoming_op, self.logged_op, self.with_txn
        )
    }
}

/// Dynamic commutativity checking for one interface.
///
/// The gatekeeper holds the *between* conditions of the interface (for the
/// recorded variants — the runtime always records return values so that
/// inverse operations can be applied later) and evaluates them against the
/// run-time information captured in the operation log. This is the
/// "forward gatekeeper" usage scenario of the paper's related-work
/// discussion: before executing an operation, check that it commutes with
/// every operation executed by other uncommitted transactions.
#[derive(Debug, Clone)]
pub struct CommutativityGatekeeper {
    interface: InterfaceId,
    /// Between conditions for recorded variants, keyed by
    /// (first operation, second operation).
    conditions: HashMap<(String, String), CommutativityCondition>,
}

impl CommutativityGatekeeper {
    /// Builds the gatekeeper for an interface from the verified catalog.
    pub fn new(interface: InterfaceId) -> CommutativityGatekeeper {
        let mut conditions = HashMap::new();
        for condition in interface_catalog(interface) {
            if condition.kind == ConditionKind::Between
                && condition.first.recorded
                && condition.second.recorded
            {
                conditions.insert(
                    (condition.first.op.clone(), condition.second.op.clone()),
                    condition,
                );
            }
        }
        CommutativityGatekeeper {
            interface,
            conditions,
        }
    }

    /// The interface this gatekeeper serves.
    pub fn interface(&self) -> InterfaceId {
        self.interface
    }

    /// The between condition for an ordered operation pair.
    pub fn condition(&self, first_op: &str, second_op: &str) -> Option<&CommutativityCondition> {
        self.conditions
            .get(&(first_op.to_string(), second_op.to_string()))
    }

    /// Does the incoming operation commute with one logged operation?
    ///
    /// # Errors
    ///
    /// Returns an error if the pair is unknown or the condition cannot be
    /// evaluated from the logged information.
    pub fn commutes_with(
        &self,
        logged: &LogEntry,
        incoming_op: &str,
        incoming_args: &[Value],
    ) -> Result<bool, String> {
        let condition = self
            .condition(&logged.op, incoming_op)
            .ok_or_else(|| format!("no condition for pair {}/{incoming_op}", logged.op))?;
        let ctx = ConditionContext {
            first_args: logged.args.clone(),
            second_args: incoming_args.to_vec(),
            initial_state: Some(logged.pre_state.clone()),
            intermediate_state: None,
            final_state: None,
            first_result: logged.result.clone(),
            second_result: None,
        };
        evaluate(condition, &ctx)
    }

    /// Checks an incoming operation of transaction `txn` against every logged
    /// operation of *other* transactions.
    ///
    /// # Errors
    ///
    /// Returns the first [`Conflict`] found. Evaluation problems are treated
    /// conservatively as conflicts (the operation will be retried or the
    /// transaction aborted).
    pub fn admit(
        &self,
        log: &OperationLog,
        txn: u64,
        incoming_op: &str,
        incoming_args: &[Value],
    ) -> Result<(), Conflict> {
        for logged in log.entries_of_others(txn) {
            let commutes = self
                .commutes_with(logged, incoming_op, incoming_args)
                .unwrap_or(false);
            if !commutes {
                return Err(Conflict {
                    with_txn: logged.txn,
                    logged_op: logged.op.clone(),
                    incoming_op: incoming_op.to_string(),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semcommute_spec::AbstractState;

    fn set_entry(txn: u64, op: &str, arg: u32, result: bool, state: &[u32]) -> LogEntry {
        LogEntry {
            txn,
            op: op.to_string(),
            args: vec![Value::elem(arg)],
            result: Some(Value::Bool(result)),
            pre_state: AbstractState::Set(
                state.iter().map(|&i| semcommute_logic::ElemId(i)).collect(),
            ),
        }
    }

    #[test]
    fn gatekeeper_has_conditions_for_all_recorded_pairs() {
        let g = CommutativityGatekeeper::new(InterfaceId::Set);
        for first in ["add", "contains", "remove", "size"] {
            for second in ["add", "contains", "remove", "size"] {
                assert!(g.condition(first, second).is_some(), "{first}/{second}");
            }
        }
        assert_eq!(g.interface(), InterfaceId::Set);
    }

    #[test]
    fn distinct_elements_commute_same_element_conflicts() {
        let g = CommutativityGatekeeper::new(InterfaceId::Set);
        let mut log = OperationLog::new();
        // Transaction 1 added element 5, which was new (result = true).
        log.record(set_entry(1, "add", 5, true, &[]));

        // Transaction 2 adding a different element commutes.
        assert!(g.admit(&log, 2, "add", &[Value::elem(7)]).is_ok());
        // Transaction 2 removing the element transaction 1 just added does
        // not commute.
        let conflict = g.admit(&log, 2, "remove", &[Value::elem(5)]).unwrap_err();
        assert_eq!(conflict.with_txn, 1);
        assert_eq!(conflict.logged_op, "add");
        assert!(conflict.to_string().contains("does not commute"));
        // The same transaction is never in conflict with itself.
        assert!(g.admit(&log, 1, "remove", &[Value::elem(5)]).is_ok());
    }

    #[test]
    fn contains_conflicts_only_when_observation_would_change() {
        let g = CommutativityGatekeeper::new(InterfaceId::Set);
        let mut log = OperationLog::new();
        // Transaction 1 observed that 3 was present (result = true, and 3 was
        // in the pre-state).
        log.record(set_entry(1, "contains", 3, true, &[3]));
        // Adding 3 again commutes (it was already present).
        assert!(g.admit(&log, 2, "add", &[Value::elem(3)]).is_ok());
        // Removing 3 would invalidate the observation.
        assert!(g.admit(&log, 2, "remove", &[Value::elem(3)]).is_err());
    }

    #[test]
    fn map_gatekeeper_uses_key_based_conditions() {
        let g = CommutativityGatekeeper::new(InterfaceId::Map);
        let mut log = OperationLog::new();
        log.record(LogEntry {
            txn: 1,
            op: "put".into(),
            args: vec![Value::elem(1), Value::elem(10)],
            result: Some(Value::null()),
            pre_state: AbstractState::Map(Default::default()),
        });
        // A put to a different key commutes.
        assert!(g
            .admit(&log, 2, "put", &[Value::elem(2), Value::elem(20)])
            .is_ok());
        // A get of the same key does not.
        assert!(g.admit(&log, 2, "get", &[Value::elem(1)]).is_err());
    }
}
