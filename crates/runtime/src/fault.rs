//! Deterministic fault injection for the speculative runtime.
//!
//! The degradation, poisoning, and backoff paths of the engine are all
//! *recovery* paths: under normal workloads they fire rarely and
//! non-deterministically, which makes them nearly untestable from the
//! outside. A [`FaultPlan`] turns them into drivable code: tests and
//! benchmarks schedule faults at exact points — by the process-global
//! **operation ordinal** (the `n`-th `Transaction::execute` call across the
//! runtime, counted from 1) or by transaction id — and the runtime fires
//! them at well-defined hooks:
//!
//! * **Forced admission conflict** — the speculative path reports a
//!   synthetic [`Conflict`](crate::Conflict) before touching the structure,
//!   exactly as if the gatekeeper had rejected the operation. This is how
//!   tests and the high-contention bench leg drive the abort rate without
//!   depending on scheduler interleavings.
//! * **Delayed publish** — the executor sleeps *between* inserting the
//!   operation into the in-flight index and advancing the published
//!   sequence number, widening the two-phase admission race window on
//!   demand.
//! * **Injected rollback failure** — the abort path of a chosen transaction
//!   poisons the runtime as if a verified inverse had been rejected,
//!   exercising the [`TxnError::Poisoned`](crate::TxnError::Poisoned)
//!   machinery deterministically.
//! * **Panic at point** — `Transaction::execute` panics at a chosen
//!   ordinal, exercising the drop-guard abort path.
//!
//! Every scheduled fault that fires is recorded as a [`FiredFault`], so a
//! test can pin that faults fired *exactly* where scheduled — no more, no
//! less. Periodic conflicts ([`FaultPlan::force_conflict_every`]) are bulk
//! contention injection for benchmarks and are counted, not recorded
//! individually.
//!
//! A plan is attached through
//! [`RuntimeOptions::faults`](crate::RuntimeOptions); a runtime without one
//! pays a single branch per operation.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// What kind of fault to inject (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The speculative path reports a synthetic admission conflict.
    ForcedConflict,
    /// The executor sleeps between index publish and sequence advance.
    DelayedPublish(Duration),
    /// `Transaction::execute` panics.
    Panic,
    /// The transaction's rollback poisons the runtime.
    RollbackFailure,
}

/// A fault that fired, recorded for exact-scheduling assertions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FiredFault {
    /// The kind of fault that fired.
    pub kind: FaultKind,
    /// The transaction it fired in.
    pub txn: u64,
    /// The global operation ordinal it fired at, for ordinal-scheduled
    /// faults; `None` for rollback failures (scheduled by transaction id).
    pub ordinal: Option<u64>,
}

/// A deterministic fault schedule (see the module docs).
///
/// Plans are shared (`Arc<FaultPlan>`) between the scheduling test and the
/// runtime; all methods take `&self`.
#[derive(Default)]
pub struct FaultPlan {
    /// Faults scheduled at exact global operation ordinals.
    at_op: Mutex<HashMap<u64, FaultKind>>,
    /// Fast path: whether `at_op` has ever been populated.
    has_at_op: AtomicBool,
    /// `n > 0`: every ordinal divisible by `n` forced-conflicts.
    conflict_period: AtomicU64,
    /// How many periodic conflicts have fired.
    periodic_conflicts: AtomicU64,
    /// Transactions whose rollback is made to fail.
    rollback_of: Mutex<HashSet<u64>>,
    has_rollback: AtomicBool,
    fired: Mutex<Vec<FiredFault>>,
}

impl fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultPlan")
            .field("scheduled_at_op", &self.at_op.lock().unwrap().len())
            .field(
                "conflict_period",
                &self.conflict_period.load(Ordering::Relaxed),
            )
            .field("fired", &self.fired.lock().unwrap().len())
            .finish()
    }
}

impl FaultPlan {
    /// An empty plan: no faults fire until some are scheduled.
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Schedules a forced admission conflict at global operation ordinal
    /// `ordinal` (1-based across the runtime).
    pub fn force_conflict_at(&self, ordinal: u64) {
        self.schedule(ordinal, FaultKind::ForcedConflict);
    }

    /// Makes every ordinal divisible by `period` report a forced conflict —
    /// bulk, deterministic contention for benchmarks. `0` turns periodic
    /// conflicts off. These fires are counted
    /// ([`periodic_conflicts`](FaultPlan::periodic_conflicts)), not
    /// recorded individually.
    pub fn force_conflict_every(&self, period: u64) {
        self.conflict_period.store(period, Ordering::Release);
    }

    /// Schedules a publish delay of `delay` at global operation ordinal
    /// `ordinal`.
    pub fn delay_publish_at(&self, ordinal: u64, delay: Duration) {
        self.schedule(ordinal, FaultKind::DelayedPublish(delay));
    }

    /// Schedules a panic at global operation ordinal `ordinal`.
    pub fn panic_at(&self, ordinal: u64) {
        self.schedule(ordinal, FaultKind::Panic);
    }

    /// Makes transaction `txn`'s rollback fail, poisoning the runtime.
    pub fn fail_rollback_of(&self, txn: u64) {
        self.rollback_of.lock().unwrap().insert(txn);
        self.has_rollback.store(true, Ordering::Release);
    }

    /// Every individually-scheduled fault that has fired, in firing order.
    pub fn fired(&self) -> Vec<FiredFault> {
        self.fired.lock().unwrap().clone()
    }

    /// How many periodic conflicts ([`force_conflict_every`]) have fired.
    ///
    /// [`force_conflict_every`]: FaultPlan::force_conflict_every
    pub fn periodic_conflicts(&self) -> u64 {
        self.periodic_conflicts.load(Ordering::Relaxed)
    }

    fn schedule(&self, ordinal: u64, kind: FaultKind) {
        self.at_op.lock().unwrap().insert(ordinal, kind);
        self.has_at_op.store(true, Ordering::Release);
    }

    fn record(&self, kind: FaultKind, txn: u64, ordinal: Option<u64>) {
        self.fired
            .lock()
            .unwrap()
            .push(FiredFault { kind, txn, ordinal });
    }

    fn scheduled(&self, ordinal: u64) -> Option<FaultKind> {
        if !self.has_at_op.load(Ordering::Acquire) {
            return None;
        }
        self.at_op.lock().unwrap().get(&ordinal).copied()
    }

    /// Executor hook: panics if a panic is scheduled at `ordinal`
    /// (recording the fire first).
    pub(crate) fn fire_panic(&self, txn: u64, ordinal: u64) {
        if let Some(FaultKind::Panic) = self.scheduled(ordinal) {
            self.record(FaultKind::Panic, txn, Some(ordinal));
            panic!("fault injection: scheduled panic at operation ordinal {ordinal}");
        }
    }

    /// Executor hook: whether `ordinal` should report a forced conflict.
    pub(crate) fn fire_forced_conflict(&self, txn: u64, ordinal: u64) -> bool {
        let period = self.conflict_period.load(Ordering::Acquire);
        if period > 0 && ordinal.is_multiple_of(period) {
            self.periodic_conflicts.fetch_add(1, Ordering::Relaxed);
            return true;
        }
        if let Some(FaultKind::ForcedConflict) = self.scheduled(ordinal) {
            self.record(FaultKind::ForcedConflict, txn, Some(ordinal));
            return true;
        }
        false
    }

    /// Executor hook: sleeps if a publish delay is scheduled at `ordinal`.
    pub(crate) fn fire_delayed_publish(&self, txn: u64, ordinal: u64) {
        if let Some(FaultKind::DelayedPublish(delay)) = self.scheduled(ordinal) {
            self.record(FaultKind::DelayedPublish(delay), txn, Some(ordinal));
            std::thread::sleep(delay);
        }
    }

    /// Executor hook: whether transaction `txn`'s rollback should fail.
    pub(crate) fn fire_rollback_failure(&self, txn: u64) -> bool {
        if !self.has_rollback.load(Ordering::Acquire) {
            return false;
        }
        if self.rollback_of.lock().unwrap().contains(&txn) {
            self.record(FaultKind::RollbackFailure, txn, None);
            return true;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hooks_fire_exactly_where_scheduled() {
        let plan = FaultPlan::new();
        plan.force_conflict_at(3);
        plan.delay_publish_at(5, Duration::from_micros(1));
        plan.fail_rollback_of(9);
        for ordinal in 1..=6 {
            assert_eq!(plan.fire_forced_conflict(1, ordinal), ordinal == 3);
            plan.fire_delayed_publish(1, ordinal);
            plan.fire_panic(1, ordinal); // none scheduled: must not panic
        }
        assert!(!plan.fire_rollback_failure(8));
        assert!(plan.fire_rollback_failure(9));
        assert_eq!(
            plan.fired(),
            vec![
                FiredFault {
                    kind: FaultKind::ForcedConflict,
                    txn: 1,
                    ordinal: Some(3),
                },
                FiredFault {
                    kind: FaultKind::DelayedPublish(Duration::from_micros(1)),
                    txn: 1,
                    ordinal: Some(5),
                },
                FiredFault {
                    kind: FaultKind::RollbackFailure,
                    txn: 9,
                    ordinal: None,
                },
            ]
        );
    }

    #[test]
    fn periodic_conflicts_are_counted_not_recorded() {
        let plan = FaultPlan::new();
        plan.force_conflict_every(3);
        let fired: Vec<u64> = (1..=12)
            .filter(|&o| plan.fire_forced_conflict(1, o))
            .collect();
        assert_eq!(fired, vec![3, 6, 9, 12]);
        assert_eq!(plan.periodic_conflicts(), 4);
        assert!(plan.fired().is_empty());
        plan.force_conflict_every(0);
        assert!(!plan.fire_forced_conflict(1, 15));
    }

    #[test]
    #[should_panic(expected = "scheduled panic at operation ordinal 2")]
    fn scheduled_panic_panics() {
        let plan = FaultPlan::new();
        plan.panic_at(2);
        plan.fire_panic(4, 1);
        plan.fire_panic(4, 2);
    }
}
