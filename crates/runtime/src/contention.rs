//! Contention management: per-structure abort-rate accounting, the
//! execution-mode state machine, and retry backoff.
//!
//! The speculative protocol only pays off while commutativity-based admission
//! *wins*: under hot-key contention the abort/rollback machinery costs more
//! than the coarse lock it replaced, and an engine that speculates
//! unconditionally thrashes — every conflicted transaction rolls back with
//! verified inverses, backs off, and re-executes, often only to conflict
//! again. This module gives the runtime the three pieces it needs to detect
//! that it is losing and degrade gracefully:
//!
//! * [`ContentionState`] — a sliding-window abort/commit account per
//!   structure, fed by the executor's commit and abort paths, driving the
//!   mode state machine `Speculative → Degraded → Probing → …`;
//! * [`ModeGate`] — the drain barrier: a reader/writer gate (speculative
//!   transactions are readers, degraded transactions are writers) that lets
//!   a degraded transaction wait until every in-flight speculative
//!   transaction on the structure has committed or aborted before it runs,
//!   which is what keeps commit-ticket serialization intact across mode
//!   transitions (see the serialization argument in `docs/ARCHITECTURE.md`);
//! * [`BackoffOptions`] — bounded exponential backoff with deterministic
//!   per-transaction jitter between retry attempts, replacing the hot
//!   `yield_now` retry spin of [`SpeculativeRuntime::run`].
//!
//! # The mode state machine
//!
//! Every transaction finish on the speculative path (commit or abort) feeds
//! a sliding window of the last [`FallbackOptions::window`] outcomes. When a
//! full window's abort rate reaches [`FallbackOptions::degrade_percent`],
//! the structure enters **Degraded** mode: new transactions route through a
//! coarse mutex section (the [`CoarseLockRuntime`] discipline inside the
//! speculative engine — whole-transaction mutual exclusion, no admission,
//! no publishing) behind the [`ModeGate`]. After
//! [`FallbackOptions::probe_period`] degraded transactions the structure
//! enters **Probing**: transactions speculate again, and after
//! [`FallbackOptions::probe_window`] probe outcomes the abort rate decides —
//! below the threshold contention has subsided and the structure returns to
//! **Speculative**; at or above it the structure falls back to **Degraded**
//! for another period.
//!
//! Mode is *advisory*: a transaction picks its path once, at its first
//! operation, and correctness never depends on when a transition lands —
//! the gate serializes degraded transactions against speculative ones
//! regardless, so a transition observed late costs at most a little
//! performance.
//!
//! [`SpeculativeRuntime::run`]: crate::SpeculativeRuntime::run
//! [`CoarseLockRuntime`]: crate::CoarseLockRuntime

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::OnceLock;
use std::time::Duration;

/// The execution mode of a structure (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Transactions execute optimistically with commutativity-based
    /// admission — the default, and the only mode when the fallback is
    /// disabled.
    Speculative,
    /// The abort rate crossed the threshold: transactions run one at a time
    /// through the coarse mutex section, without admission or publishing.
    Degraded,
    /// A probe phase: transactions speculate again so the runtime can
    /// measure whether contention has subsided.
    Probing,
}

/// Knobs of the abort-rate-driven coarse-lock fallback.
///
/// The process-wide default is [`FallbackOptions::on`]; set
/// `SEMCOMMUTE_FALLBACK=off` to pin the pre-fallback engine (the
/// differential-oracle leg) or `SEMCOMMUTE_FALLBACK=aggressive` for the
/// small-window preset the stress harnesses use to make transitions cheap
/// to reach.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FallbackOptions {
    /// Whether the fallback runs at all. Disabled, the engine behaves
    /// exactly as before this layer existed: every transaction speculates
    /// and the [`ModeGate`] is never touched.
    pub enabled: bool,
    /// Sliding-window size, in transaction finishes, for the abort-rate
    /// account while speculating.
    pub window: u32,
    /// Abort percentage (0–100) at which a full window degrades the
    /// structure to the coarse-lock section.
    pub degrade_percent: u32,
    /// Degraded transaction finishes before the structure probes
    /// speculation again.
    pub probe_period: u32,
    /// Probe-phase finishes measured before deciding between returning to
    /// [`Mode::Speculative`] and falling back to [`Mode::Degraded`].
    pub probe_window: u32,
}

impl FallbackOptions {
    /// The fallback disabled: unconditional speculation, today's oracle leg.
    pub fn off() -> FallbackOptions {
        FallbackOptions {
            enabled: false,
            window: 0,
            degrade_percent: 100,
            probe_period: 0,
            probe_window: 0,
        }
    }

    /// The production preset: a 128-finish window degrading at a 50% abort
    /// rate, probing after 512 degraded transactions with a 32-finish probe
    /// window. Benign workloads (the uniform and skewed benchmark legs abort
    /// well under 1% of transactions) never come near the threshold.
    pub fn on() -> FallbackOptions {
        FallbackOptions {
            enabled: true,
            window: 128,
            degrade_percent: 50,
            probe_period: 512,
            probe_window: 32,
        }
    }

    /// The stress preset: a 16-finish window degrading at 25%, probing
    /// after 8 degraded transactions with an 8-finish probe window —
    /// transitions are reachable in a few dozen transactions, which is what
    /// the differential and fault-injection harnesses need.
    pub fn aggressive() -> FallbackOptions {
        FallbackOptions {
            enabled: true,
            window: 16,
            degrade_percent: 25,
            probe_period: 8,
            probe_window: 8,
        }
    }

    /// Parses a `SEMCOMMUTE_FALLBACK` setting: `off` (or `0` / `false`)
    /// disables the fallback, `aggressive` selects the stress preset, and
    /// anything else — including unset — selects the production preset.
    pub fn parse(setting: Option<&str>) -> FallbackOptions {
        match setting {
            Some("off" | "0" | "false") => FallbackOptions::off(),
            Some("aggressive") => FallbackOptions::aggressive(),
            _ => FallbackOptions::on(),
        }
    }

    /// The process-wide default: the `SEMCOMMUTE_FALLBACK` environment
    /// variable, read once.
    pub fn default_options() -> FallbackOptions {
        static DEFAULT: OnceLock<FallbackOptions> = OnceLock::new();
        *DEFAULT.get_or_init(|| {
            FallbackOptions::parse(std::env::var("SEMCOMMUTE_FALLBACK").ok().as_deref())
        })
    }
}

/// Knobs of the retry backoff in [`SpeculativeRuntime::run`].
///
/// The process-wide default is [`BackoffOptions::on`]; set
/// `SEMCOMMUTE_BACKOFF=off` for the pre-backoff behavior (a bare
/// `yield_now` between attempts).
///
/// [`SpeculativeRuntime::run`]: crate::SpeculativeRuntime::run
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackoffOptions {
    /// Whether conflicted retries sleep at all. Disabled, every retry just
    /// yields — the hot spin this layer replaced.
    pub enabled: bool,
    /// Attempts that only yield before the exponential sleeps start: the
    /// first conflict is usually resolved by the time the thread is
    /// rescheduled, so sleeping immediately would oversleep the common case.
    pub spin_retries: u32,
    /// The first sleep, doubled per subsequent attempt.
    pub base: Duration,
    /// The ceiling no sleep exceeds, jitter included.
    pub cap: Duration,
}

impl BackoffOptions {
    /// Backoff disabled: a bare `yield_now` between attempts.
    pub fn off() -> BackoffOptions {
        BackoffOptions {
            enabled: false,
            spin_retries: 0,
            base: Duration::ZERO,
            cap: Duration::ZERO,
        }
    }

    /// The production preset: four yield-only attempts, then exponential
    /// sleeps from 10 µs capped at 500 µs.
    pub fn on() -> BackoffOptions {
        BackoffOptions {
            enabled: true,
            spin_retries: 4,
            base: Duration::from_micros(10),
            cap: Duration::from_micros(500),
        }
    }

    /// Parses a `SEMCOMMUTE_BACKOFF` setting: `off` (or `0` / `false`)
    /// disables backoff, anything else — including unset — selects the
    /// production preset.
    pub fn parse(setting: Option<&str>) -> BackoffOptions {
        match setting {
            Some("off" | "0" | "false") => BackoffOptions::off(),
            _ => BackoffOptions::on(),
        }
    }

    /// The process-wide default: the `SEMCOMMUTE_BACKOFF` environment
    /// variable, read once.
    pub fn default_options() -> BackoffOptions {
        static DEFAULT: OnceLock<BackoffOptions> = OnceLock::new();
        *DEFAULT.get_or_init(|| {
            BackoffOptions::parse(std::env::var("SEMCOMMUTE_BACKOFF").ok().as_deref())
        })
    }

    /// Waits between retry attempt `attempt` (0-based) and the next one,
    /// returning how long was slept. The first
    /// [`spin_retries`](BackoffOptions::spin_retries) attempts (and every
    /// attempt with backoff disabled) yield without sleeping; after that the
    /// sleep doubles per attempt up to [`cap`](BackoffOptions::cap), scaled
    /// by a deterministic per-`(txn, attempt)` jitter in [½, 1) so
    /// transactions that conflicted with each other do not wake in lockstep
    /// and collide again.
    pub fn wait(&self, txn: u64, attempt: u32) -> Duration {
        if !self.enabled || attempt < self.spin_retries {
            std::thread::yield_now();
            return Duration::ZERO;
        }
        let exp = (attempt - self.spin_retries).min(32);
        let uncapped = self
            .base
            .saturating_mul(1u32.checked_shl(exp).unwrap_or(u32::MAX));
        let full = uncapped.min(self.cap);
        // splitmix64 over (txn, attempt): deterministic, decorrelated.
        let mut h = (txn << 32) ^ u64::from(attempt) ^ 0x9e37_79b9_7f4a_7c15;
        h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        h ^= h >> 31;
        let jittered = full.mul_f64(0.5 + (h % 512) as f64 / 1024.0);
        std::thread::sleep(jittered);
        jittered
    }
}

/// Packed sliding window: abort count in the high 32 bits, finish count in
/// the low 32. One CAS per finish; the finish that fills the window swaps in
/// a fresh one and returns the closed window's counts.
fn bump_window(window: &AtomicU64, aborted: bool, size: u32) -> Option<(u32, u32)> {
    loop {
        let cur = window.load(Ordering::Relaxed);
        let (mut aborts, mut total) = ((cur >> 32) as u32, cur as u32);
        total += 1;
        if aborted {
            aborts += 1;
        }
        if total >= size {
            if window
                .compare_exchange_weak(cur, 0, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                return Some((aborts, total));
            }
        } else if window
            .compare_exchange_weak(
                cur,
                (u64::from(aborts) << 32) | u64::from(total),
                Ordering::Relaxed,
                Ordering::Relaxed,
            )
            .is_ok()
        {
            return None;
        }
    }
}

/// The per-structure contention account: the mode state machine plus the
/// sliding windows that drive it. All methods are lock-free; transitions are
/// decided by the transaction finish that completes a window and applied
/// with a compare-and-swap on the mode, so concurrent finishes cannot
/// double-apply one.
#[derive(Debug)]
pub struct ContentionState {
    opts: FallbackOptions,
    mode: AtomicU8,
    /// Speculative-mode window (see [`bump_window`]).
    window: AtomicU64,
    /// Probe-mode window.
    probe: AtomicU64,
    /// Degraded finishes since the structure degraded.
    degraded_finishes: AtomicU64,
    mode_switches: AtomicU64,
}

const MODE_SPECULATIVE: u8 = 0;
const MODE_DEGRADED: u8 = 1;
const MODE_PROBING: u8 = 2;

fn mode_code(mode: Mode) -> u8 {
    match mode {
        Mode::Speculative => MODE_SPECULATIVE,
        Mode::Degraded => MODE_DEGRADED,
        Mode::Probing => MODE_PROBING,
    }
}

impl ContentionState {
    /// A fresh account in [`Mode::Speculative`].
    pub fn new(opts: FallbackOptions) -> ContentionState {
        ContentionState {
            opts,
            mode: AtomicU8::new(MODE_SPECULATIVE),
            window: AtomicU64::new(0),
            probe: AtomicU64::new(0),
            degraded_finishes: AtomicU64::new(0),
            mode_switches: AtomicU64::new(0),
        }
    }

    /// The current execution mode. Always [`Mode::Speculative`] while the
    /// fallback is disabled.
    pub fn mode(&self) -> Mode {
        match self.mode.load(Ordering::Acquire) {
            MODE_DEGRADED => Mode::Degraded,
            MODE_PROBING => Mode::Probing,
            _ => Mode::Speculative,
        }
    }

    /// How many mode transitions have been applied.
    pub fn mode_switches(&self) -> u64 {
        self.mode_switches.load(Ordering::Relaxed)
    }

    /// Applies `from → to` if the mode still is `from`; returns whether this
    /// call won the transition.
    fn switch(&self, from: Mode, to: Mode) -> bool {
        if self
            .mode
            .compare_exchange(
                mode_code(from),
                mode_code(to),
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_err()
        {
            return false;
        }
        // Reset the account the new mode runs on. Concurrent finishes of
        // straggler transactions may race these stores; the windows are
        // heuristics, so an off-by-a-few window is harmless.
        match to {
            Mode::Speculative => self.window.store(0, Ordering::Relaxed),
            Mode::Degraded => self.degraded_finishes.store(0, Ordering::Relaxed),
            Mode::Probing => self.probe.store(0, Ordering::Relaxed),
        }
        self.mode_switches.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Records the finish of a speculative-path transaction. Called by the
    /// executor's commit and abort paths before the transaction releases the
    /// [`ModeGate`].
    pub fn record_speculative_finish(&self, aborted: bool) {
        if !self.opts.enabled {
            return;
        }
        match self.mode() {
            Mode::Speculative => {
                if let Some((aborts, total)) = bump_window(&self.window, aborted, self.opts.window)
                {
                    if aborts * 100 >= self.opts.degrade_percent * total {
                        self.switch(Mode::Speculative, Mode::Degraded);
                    }
                }
            }
            Mode::Probing => {
                if let Some((aborts, total)) =
                    bump_window(&self.probe, aborted, self.opts.probe_window)
                {
                    if aborts * 100 >= self.opts.degrade_percent * total {
                        self.switch(Mode::Probing, Mode::Degraded);
                    } else {
                        self.switch(Mode::Probing, Mode::Speculative);
                    }
                }
            }
            // A speculative straggler finishing after the structure degraded
            // carries no signal about the degraded phase.
            Mode::Degraded => {}
        }
    }

    /// Records the finish of a degraded-path transaction; returns whether
    /// this finish transitioned the structure into [`Mode::Probing`] (the
    /// caller still holds the gate exclusively at that point).
    pub fn record_degraded_finish(&self) -> bool {
        if !self.opts.enabled || self.mode() != Mode::Degraded {
            return false;
        }
        let n = self.degraded_finishes.fetch_add(1, Ordering::Relaxed) + 1;
        n >= u64::from(self.opts.probe_period) && self.switch(Mode::Degraded, Mode::Probing)
    }
}

const WRITER: u64 = 1 << 63;
const WAITING: u64 = 1 << 62;
const READERS: u64 = WAITING - 1;

/// The drain barrier between speculative and degraded execution.
///
/// Speculative transactions hold the gate *shared* from their first
/// operation until they finish; a degraded transaction holds it *exclusive*
/// for its whole body. Acquiring the exclusive side therefore waits until
/// every in-flight speculative transaction has committed or aborted — the
/// drain — and blocks new speculative entries while it waits (the `WAITING`
/// bit), so a degraded transaction cannot starve behind a stream of readers.
/// Degraded transactions serialize among themselves on a dedicated
/// test-and-set lock, which keeps the writer bits single-owner.
///
/// Both sides draw their commit ticket *before* releasing the gate, which
/// is what extends the commit-ticket serialization argument across modes:
/// two transactions on different sides never overlap in real time, and the
/// gate's release/acquire edge orders their ticket draws.
///
/// The gate is a plain spin/yield primitive (`#![forbid(unsafe_code)]`
/// friendly): waiting sides spin briefly, then yield.
#[derive(Debug, Default)]
pub struct ModeGate {
    /// `WRITER` bit 63, `WAITING` bit 62, reader count below.
    state: AtomicU64,
    /// Serializes degraded transactions so at most one thread manipulates
    /// the writer bits at a time.
    writer_lock: AtomicBool,
}

fn pause(spins: &mut u32) {
    *spins += 1;
    if *spins < 64 {
        std::hint::spin_loop();
    } else {
        std::thread::yield_now();
    }
}

impl ModeGate {
    /// A fresh, open gate.
    pub fn new() -> ModeGate {
        ModeGate::default()
    }

    /// Enters the shared (speculative) side, waiting while a degraded
    /// transaction holds or awaits the gate.
    pub fn enter_shared(&self) {
        let mut spins = 0;
        loop {
            let s = self.state.load(Ordering::Acquire);
            if s & (WRITER | WAITING) == 0 {
                if self
                    .state
                    .compare_exchange_weak(s, s + 1, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
                {
                    return;
                }
            } else {
                pause(&mut spins);
            }
        }
    }

    /// Leaves the shared side.
    pub fn exit_shared(&self) {
        self.state.fetch_sub(1, Ordering::Release);
    }

    /// Enters the exclusive (degraded) side: serializes against other
    /// degraded transactions, blocks new speculative entries, and drains the
    /// in-flight ones.
    pub fn enter_exclusive(&self) {
        let mut spins = 0;
        while self.writer_lock.swap(true, Ordering::Acquire) {
            pause(&mut spins);
        }
        self.state.fetch_or(WAITING, Ordering::AcqRel);
        let mut spins = 0;
        while self.state.load(Ordering::Acquire) & READERS != 0 {
            pause(&mut spins);
        }
        // Sole writer (the writer lock is held), no readers, new readers
        // blocked by WAITING: claim the write bit.
        self.state.store(WRITER, Ordering::Release);
    }

    /// Leaves the exclusive side, reopening the gate.
    pub fn exit_exclusive(&self) {
        self.state.store(0, Ordering::Release);
        self.writer_lock.store(false, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;
    use std::sync::Arc;

    #[test]
    fn presets_parse_from_env_style_settings() {
        assert!(!FallbackOptions::parse(Some("off")).enabled);
        assert!(!FallbackOptions::parse(Some("0")).enabled);
        assert_eq!(
            FallbackOptions::parse(Some("aggressive")),
            FallbackOptions::aggressive()
        );
        assert_eq!(FallbackOptions::parse(None), FallbackOptions::on());
        assert_eq!(FallbackOptions::parse(Some("on")), FallbackOptions::on());
        assert!(!BackoffOptions::parse(Some("off")).enabled);
        assert_eq!(BackoffOptions::parse(None), BackoffOptions::on());
    }

    #[test]
    fn disabled_fallback_never_leaves_speculative() {
        let c = ContentionState::new(FallbackOptions::off());
        for _ in 0..1_000 {
            c.record_speculative_finish(true);
        }
        assert_eq!(c.mode(), Mode::Speculative);
        assert_eq!(c.mode_switches(), 0);
    }

    #[test]
    fn state_machine_round_trips_through_all_three_modes() {
        let opts = FallbackOptions {
            enabled: true,
            window: 4,
            degrade_percent: 50,
            probe_period: 3,
            probe_window: 2,
        };
        let c = ContentionState::new(opts);
        // A clean window keeps the mode.
        for _ in 0..4 {
            c.record_speculative_finish(false);
        }
        assert_eq!(c.mode(), Mode::Speculative);
        // Two aborts in a window of four hit the 50% threshold.
        for aborted in [true, false, true, false] {
            c.record_speculative_finish(aborted);
        }
        assert_eq!(c.mode(), Mode::Degraded);
        // Three degraded finishes start a probe phase…
        for _ in 0..2 {
            assert!(!c.record_degraded_finish());
        }
        assert!(c.record_degraded_finish());
        assert_eq!(c.mode(), Mode::Probing);
        // …whose aborts send the structure straight back to Degraded…
        c.record_speculative_finish(true);
        c.record_speculative_finish(true);
        assert_eq!(c.mode(), Mode::Degraded);
        // …and whose clean outcomes restore speculation.
        for _ in 0..3 {
            c.record_degraded_finish();
        }
        assert_eq!(c.mode(), Mode::Probing);
        c.record_speculative_finish(false);
        c.record_speculative_finish(false);
        assert_eq!(c.mode(), Mode::Speculative);
        assert_eq!(c.mode_switches(), 5);
    }

    #[test]
    fn below_threshold_windows_keep_speculating() {
        let opts = FallbackOptions {
            enabled: true,
            window: 10,
            degrade_percent: 50,
            probe_period: 4,
            probe_window: 4,
        };
        let c = ContentionState::new(opts);
        for round in 0..20 {
            for i in 0..10 {
                // Four aborts per ten finishes: under the 50% threshold.
                c.record_speculative_finish(i % 3 == 0 && round % 2 == 0);
            }
        }
        assert_eq!(c.mode(), Mode::Speculative);
        assert_eq!(c.mode_switches(), 0);
    }

    #[test]
    fn gate_drains_readers_before_the_writer_runs() {
        let gate = Arc::new(ModeGate::new());
        let readers_in = Arc::new(AtomicU32::new(0));
        let writer_ran = Arc::new(AtomicBool::new(false));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let gate = Arc::clone(&gate);
                let readers_in = Arc::clone(&readers_in);
                let writer_ran = Arc::clone(&writer_ran);
                scope.spawn(move || {
                    for _ in 0..200 {
                        gate.enter_shared();
                        readers_in.fetch_add(1, Ordering::SeqCst);
                        assert!(
                            !writer_ran.load(Ordering::SeqCst)
                                || readers_in.load(Ordering::SeqCst) > 0
                        );
                        std::hint::spin_loop();
                        readers_in.fetch_sub(1, Ordering::SeqCst);
                        gate.exit_shared();
                    }
                });
            }
            for _ in 0..2 {
                let gate = Arc::clone(&gate);
                let readers_in = Arc::clone(&readers_in);
                let writer_ran = Arc::clone(&writer_ran);
                scope.spawn(move || {
                    for _ in 0..100 {
                        gate.enter_exclusive();
                        // The drain barrier: no reader is inside.
                        assert_eq!(readers_in.load(Ordering::SeqCst), 0);
                        writer_ran.store(true, Ordering::SeqCst);
                        gate.exit_exclusive();
                    }
                });
            }
        });
        assert!(writer_ran.load(Ordering::SeqCst));
    }

    #[test]
    fn backoff_is_deterministic_bounded_and_monotone_per_txn() {
        let opts = BackoffOptions::on();
        // Spin attempts sleep nothing.
        assert_eq!(opts.wait(7, 0), Duration::ZERO);
        assert_eq!(opts.wait(7, 3), Duration::ZERO);
        let d1 = opts.wait(7, 4);
        let d2 = opts.wait(7, 4);
        assert_eq!(d1, d2, "jitter is deterministic per (txn, attempt)");
        assert!(d1 >= opts.base / 2 && d1 <= opts.cap);
        // Far past the cap the sleep stays bounded.
        assert!(opts.wait(7, 30) <= opts.cap);
        // Different transactions jitter differently (with these constants).
        assert_ne!(opts.wait(7, 6), opts.wait(8, 6));
        // Disabled backoff never sleeps.
        assert_eq!(BackoffOptions::off().wait(1, 100), Duration::ZERO);
    }
}
