//! The coarse-grained locking baseline.
//!
//! The simplest correct way to run transactions over a shared data structure
//! is to hold one mutex for the whole transaction. It needs no commutativity
//! information and no rollback, but it serializes *all* transactions — even
//! ones whose operations semantically commute. The benchmark suite compares
//! this baseline against the commutativity-aware [`crate::SpeculativeRuntime`]
//! to reproduce the motivation of Chapter 1: exploiting commuting operations
//! increases the amount of exploitable parallelism.

use std::sync::Arc;

use parking_lot::Mutex;
use semcommute_logic::Value;
use semcommute_spec::AbstractState;

use crate::structure::{AnyStructure, DispatchError};

/// A shared data structure protected by a single transaction-scoped lock.
#[derive(Clone)]
pub struct CoarseLockRuntime {
    structure: Arc<Mutex<AnyStructure>>,
}

/// A handle on the locked structure for the duration of one transaction.
pub struct CoarseTransaction<'a> {
    guard: parking_lot::MutexGuard<'a, AnyStructure>,
}

impl CoarseLockRuntime {
    /// Wraps a concrete data structure.
    pub fn new(structure: AnyStructure) -> CoarseLockRuntime {
        CoarseLockRuntime {
            structure: Arc::new(Mutex::new(structure)),
        }
    }

    /// Runs a whole transaction while holding the lock.
    pub fn run_transaction<T>(&self, body: impl FnOnce(&mut CoarseTransaction<'_>) -> T) -> T {
        let guard = self.structure.lock();
        let mut txn = CoarseTransaction { guard };
        body(&mut txn)
    }

    /// The current abstract state.
    pub fn snapshot(&self) -> AbstractState {
        self.structure.lock().abstract_state()
    }
}

impl CoarseTransaction<'_> {
    /// Executes one operation.
    ///
    /// # Errors
    ///
    /// Returns a [`DispatchError`] if the operation is unknown or its
    /// arguments are invalid.
    pub fn execute(&mut self, op: &str, args: &[Value]) -> Result<Option<Value>, DispatchError> {
        self.guard.apply(op, args)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semcommute_logic::ElemId;

    #[test]
    fn transactions_are_serialized_but_correct() {
        let rt = CoarseLockRuntime::new(AnyStructure::by_name("HashSet").unwrap());
        std::thread::scope(|scope| {
            for t in 0..4u32 {
                let rt = rt.clone();
                scope.spawn(move || {
                    for i in 0..25u32 {
                        rt.run_transaction(|txn| {
                            txn.execute("add", &[Value::elem(t * 25 + i + 1)]).unwrap();
                            txn.execute("size", &[]).unwrap();
                        });
                    }
                });
            }
        });
        assert_eq!(
            rt.snapshot(),
            AbstractState::Set((1..=100).map(ElemId).collect())
        );
    }

    #[test]
    fn errors_are_propagated_to_the_caller() {
        let rt = CoarseLockRuntime::new(AnyStructure::by_name("ArrayList").unwrap());
        let result = rt.run_transaction(|txn| txn.execute("get", &[Value::Int(3)]));
        assert!(result.is_err());
    }
}
