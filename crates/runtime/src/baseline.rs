//! The coarse-grained locking baseline.
//!
//! The simplest correct way to run transactions over a shared data structure
//! is to hold one mutex for the whole transaction. It needs no commutativity
//! information and no rollback, but it serializes *all* transactions — even
//! ones whose operations semantically commute. The benchmark suite compares
//! this baseline against the commutativity-aware [`crate::SpeculativeRuntime`]
//! to reproduce the motivation of Chapter 1: exploiting commuting operations
//! increases the amount of exploitable parallelism.
//!
//! The speculative engine also *borrows* this discipline at runtime: when
//! its abort-rate account says speculation is losing on a hot structure, the
//! contention manager routes transactions through a coarse mutex section
//! with exactly this whole-transaction mutual exclusion (see
//! [`crate::contention`] and the degraded path of
//! [`Transaction`](crate::Transaction)) — the baseline is not just the
//! benchmark yardstick but the engine's own safe harbor.
//!
//! # Panic safety
//!
//! `parking_lot` mutexes do not poison: if a transaction body panics halfway
//! through its operations, the lock is released with the structure left
//! **half-mutated** — the baseline has no rollback, so the partial effects
//! cannot be undone. Silently letting later transactions run against that
//! corrupted state would invalidate every result computed after the panic
//! (including benchmark comparisons against the speculative runtime). The
//! runtime therefore records the poisoning and refuses further use: the
//! original panic propagates to its caller, and every subsequent
//! [`run_transaction`](CoarseLockRuntime::run_transaction) or
//! [`snapshot`](CoarseLockRuntime::snapshot) panics with a "poisoned"
//! message instead of returning wrong answers.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use semcommute_logic::Value;
use semcommute_spec::AbstractState;

use crate::structure::{AnyStructure, DispatchError};

/// A shared data structure protected by a single transaction-scoped lock.
#[derive(Clone)]
pub struct CoarseLockRuntime {
    structure: Arc<Mutex<AnyStructure>>,
    /// Set when a transaction body panicked mid-transaction, leaving the
    /// structure half-mutated (parking_lot mutexes do not poison on their
    /// own).
    poisoned: Arc<AtomicBool>,
}

/// A handle on the locked structure for the duration of one transaction.
pub struct CoarseTransaction<'a> {
    guard: parking_lot::MutexGuard<'a, AnyStructure>,
}

/// Marks the runtime poisoned if dropped during a panic unwind — i.e. if the
/// transaction body panicked while the structure lock was held.
struct PoisonOnPanic<'a> {
    poisoned: &'a AtomicBool,
}

impl Drop for PoisonOnPanic<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.poisoned.store(true, Ordering::Release);
        }
    }
}

impl CoarseLockRuntime {
    /// Wraps a concrete data structure.
    pub fn new(structure: AnyStructure) -> CoarseLockRuntime {
        CoarseLockRuntime {
            structure: Arc::new(Mutex::new(structure)),
            poisoned: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Whether a transaction body panicked mid-transaction, leaving the
    /// structure in an unknown half-mutated state.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Acquire)
    }

    fn assert_not_poisoned(&self) {
        assert!(
            !self.is_poisoned(),
            "CoarseLockRuntime poisoned: a transaction body panicked \
             mid-transaction and the structure may be half-mutated"
        );
    }

    /// Runs a whole transaction while holding the lock.
    ///
    /// # Panics
    ///
    /// Panics if a previous transaction body panicked mid-transaction (the
    /// structure may be half-mutated — see the module docs); a panic raised
    /// by `body` itself poisons the runtime and propagates.
    pub fn run_transaction<T>(&self, body: impl FnOnce(&mut CoarseTransaction<'_>) -> T) -> T {
        self.assert_not_poisoned();
        let guard = self.structure.lock();
        let poison = PoisonOnPanic {
            poisoned: &self.poisoned,
        };
        let mut txn = CoarseTransaction { guard };
        let value = body(&mut txn);
        // Reached only on normal return: an unwinding body skips straight to
        // `poison`'s Drop, which records the half-mutated state.
        std::mem::forget(poison);
        value
    }

    /// The current abstract state.
    ///
    /// # Panics
    ///
    /// Panics if the runtime is poisoned (see
    /// [`run_transaction`](CoarseLockRuntime::run_transaction)).
    pub fn snapshot(&self) -> AbstractState {
        self.assert_not_poisoned();
        self.structure.lock().abstract_state()
    }
}

impl CoarseTransaction<'_> {
    /// Executes one operation.
    ///
    /// # Errors
    ///
    /// Returns a [`DispatchError`] if the operation is unknown or its
    /// arguments are invalid.
    pub fn execute(&mut self, op: &str, args: &[Value]) -> Result<Option<Value>, DispatchError> {
        self.guard.apply(op, args)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semcommute_logic::ElemId;

    #[test]
    fn transactions_are_serialized_but_correct() {
        let rt = CoarseLockRuntime::new(AnyStructure::by_name("HashSet").unwrap());
        std::thread::scope(|scope| {
            for t in 0..4u32 {
                let rt = rt.clone();
                scope.spawn(move || {
                    for i in 0..25u32 {
                        rt.run_transaction(|txn| {
                            txn.execute("add", &[Value::elem(t * 25 + i + 1)]).unwrap();
                            txn.execute("size", &[]).unwrap();
                        });
                    }
                });
            }
        });
        assert_eq!(
            rt.snapshot(),
            AbstractState::Set((1..=100).map(ElemId).collect())
        );
        assert!(!rt.is_poisoned());
    }

    #[test]
    fn errors_are_propagated_to_the_caller() {
        let rt = CoarseLockRuntime::new(AnyStructure::by_name("ArrayList").unwrap());
        let result = rt.run_transaction(|txn| txn.execute("get", &[Value::Int(3)]));
        assert!(result.is_err());
        // Returning an error is not a panic: the runtime stays usable.
        assert!(!rt.is_poisoned());
    }

    #[test]
    fn mid_transaction_panic_poisons_the_runtime() {
        let rt = CoarseLockRuntime::new(AnyStructure::by_name("HashSet").unwrap());
        rt.run_transaction(|txn| txn.execute("add", &[Value::elem(1)]).unwrap());

        // A body that mutates and then panics leaves the structure
        // half-mutated: element 2 is in, element 3 never made it.
        let boom = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            rt.run_transaction(|txn| {
                txn.execute("add", &[Value::elem(2)]).unwrap();
                panic!("injected mid-transaction failure");
            })
        }));
        assert!(boom.is_err());
        assert!(rt.is_poisoned());

        // Subsequent use fails loudly instead of computing on corrupted
        // state.
        let later = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            rt.run_transaction(|txn| txn.execute("size", &[]).unwrap())
        }));
        assert!(later.is_err());
        let snap = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| rt.snapshot()));
        assert!(snap.is_err());
    }
}
