//! The speculative transaction executor.
//!
//! Transactions execute operations on a shared data structure optimistically:
//! before an operation runs, the commutativity gatekeeper checks (using the
//! verified *between* conditions) that it semantically commutes with every
//! operation executed by other uncommitted transactions. If it does, the
//! operation executes and is logged together with its return value and
//! (where a condition needs it) a pre-state projection; if it does not, the
//! transaction observes a conflict and aborts, rolling back its own logged
//! operations with the verified *inverse* operations. Because all interleaved
//! operations of concurrent transactions pairwise commute at the abstract
//! level, the committed execution is equivalent to some serial execution of
//! the committed transactions — the correctness argument the paper's client
//! systems rely on.
//!
//! # Concurrency protocol
//!
//! The runtime keeps the structure behind one mutex but keeps the *admission*
//! work — the expensive part, one condition evaluation per outstanding
//! operation — off that mutex. Uncommitted operations live in the sharded
//! [`InFlightIndex`]; a monotone publish sequence (`publish_seq`) orders them.
//! [`Transaction::execute`] runs in two phases:
//!
//! 1. **Optimistic phase (no structure lock).** Load `publish_seq` with
//!    `Acquire` as a snapshot, read every other transaction's published
//!    operations from the index (shard read locks only), and evaluate the
//!    between conditions lock-free.
//! 2. **Validated apply (structure lock).** Take the structure lock,
//!    re-check only the operations published *after* the snapshot
//!    ([`InFlightIndex::others_since`]), then apply the operation, publish
//!    its log entry to the index, and bump `publish_seq` with a `Release`
//!    store — in that order, so any operation whose sequence number a later
//!    `Acquire` load observes is already visible in its shard.
//!
//! Publishing under the structure lock makes apply-and-publish atomic: no
//! operation can take effect without being visible to the revalidation pass
//! of every concurrent admission. Commit takes **no** structure lock — the
//! committed effects are already applied, so commit only removes the
//! transaction's slot from the index (O(own operations)). Abort removes the
//! slot *and* applies the verified inverses, both under the structure lock,
//! so no admission can run against a state that still contains an effect
//! whose log entry has already disappeared.
//!
//! Lock order: structure mutex before index shard lock, never the reverse.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use parking_lot::Mutex;
use semcommute_logic::Value;
use semcommute_spec::AbstractState;

use crate::gatekeeper::{AdmissionError, AdmitBackend, CommutativityGatekeeper, Conflict};
use crate::index::{InFlightIndex, PublishedOp};
use crate::log::LogEntry;
use crate::rollback::InverseRollback;
use crate::structure::{AnyStructure, DispatchError, TrackedStructure};

/// An error observed by a transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxnError {
    /// The operation does not commute with an uncommitted operation of
    /// another transaction; the transaction should abort (and typically
    /// retry).
    Conflict(Conflict),
    /// A commutativity condition could not be evaluated (unknown operation
    /// pair, or a condition referencing information the log entry does not
    /// carry). This is a configuration error, not a speculative outcome:
    /// [`SpeculativeRuntime::run`] does **not** retry it.
    Condition(String),
    /// The operation itself was rejected (unknown name, bad argument).
    Dispatch(String),
    /// The transaction has already been committed or aborted.
    Finished,
    /// The retry budget of [`SpeculativeRuntime::run`] was exhausted.
    RetriesExhausted,
    /// The runtime is poisoned: a verified inverse failed to apply during a
    /// rollback, so the structure may hold effects of an aborted transaction.
    /// The payload diagnoses the failed inverse. Like the PR 7 coarse-lock
    /// poisoning this is sticky — every subsequent operation is refused —
    /// but it surfaces as an error instead of a panic, so the caller decides
    /// how to wind down. [`SpeculativeRuntime::run`] does **not** retry it.
    Poisoned(String),
}

impl fmt::Display for TxnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxnError::Conflict(c) => write!(f, "conflict: {c}"),
            TxnError::Condition(e) => write!(f, "condition evaluation failed: {e}"),
            TxnError::Dispatch(e) => write!(f, "operation rejected: {e}"),
            TxnError::Finished => write!(f, "transaction already finished"),
            TxnError::RetriesExhausted => write!(f, "retry budget exhausted"),
            TxnError::Poisoned(e) => write!(f, "runtime poisoned: {e}"),
        }
    }
}

impl std::error::Error for TxnError {}

impl From<DispatchError> for TxnError {
    fn from(e: DispatchError) -> Self {
        TxnError::Dispatch(e.to_string())
    }
}

/// Execution statistics of a [`SpeculativeRuntime`].
///
/// The counters satisfy `commits + aborts == begun` once every transaction
/// has finished (committed, aborted, or been dropped).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RuntimeStats {
    /// Transactions begun ([`SpeculativeRuntime::begin`], including the
    /// attempts made by [`SpeculativeRuntime::run`]).
    pub begun: u64,
    /// Committed transactions.
    pub commits: u64,
    /// Aborted transactions. Every non-committed finish counts: explicit
    /// [`Transaction::abort`], the rollback performed when a `Transaction` is
    /// dropped uncommitted, and each retry of [`SpeculativeRuntime::run`] —
    /// **including** transactions that executed zero operations (such aborts
    /// are lock-free but still counted, so the `commits + aborts == begun`
    /// identity holds).
    pub aborts: u64,
    /// Conflicts detected by the gatekeeper.
    pub conflicts: u64,
    /// Operations executed (including those later rolled back).
    pub operations: u64,
    /// Rollbacks that failed because a verified inverse did not apply. Each
    /// failure poisons the runtime (see [`TxnError::Poisoned`]); a non-zero
    /// count means the structure may hold effects of aborted transactions.
    pub rollback_failures: u64,
}

struct Shared {
    structure: Mutex<TrackedStructure>,
    index: InFlightIndex,
    gatekeeper: CommutativityGatekeeper,
    rollback: InverseRollback,
    next_txn: AtomicU64,
    /// Monotone count of published operations. Written only under the
    /// structure lock (with `Release`); admission reads it with `Acquire` to
    /// snapshot which operations its optimistic pass has covered.
    publish_seq: AtomicU64,
    /// Monotone commit tickets, the serialization order certified by the
    /// between conditions (see [`Transaction::commit`]).
    commit_seq: AtomicU64,
    begun: AtomicU64,
    commits: AtomicU64,
    aborts: AtomicU64,
    conflicts: AtomicU64,
    operations: AtomicU64,
    rollback_failures: AtomicU64,
    /// Set (once) when a rollback fails to apply a verified inverse: the
    /// structure may hold effects of an aborted transaction, so every
    /// subsequent `execute` is refused with [`TxnError::Poisoned`]. Sticky
    /// by design, mirroring the PR 7 coarse-lock poisoning — but surfaced
    /// as an error, never a panic, because the failure is detected while
    /// holding the structure lock.
    poison: OnceLock<String>,
}

impl Shared {
    /// Classifies the incoming operation against a batch of published
    /// operations, translating admission outcomes to transaction errors.
    fn check_against(
        &self,
        published: &[Arc<PublishedOp>],
        op: &str,
        op_idx: Option<u16>,
        args: &[Value],
    ) -> Result<(), TxnError> {
        for p in published {
            // Both operation names resolved to dense indices already (the
            // logged one at publish time, the incoming one once per batch by
            // the caller): the per-entry check hashes no strings.
            let verdict = match (p.op_idx, op_idx) {
                (Some(first), Some(second)) => self
                    .gatekeeper
                    .check_indexed(first, &p.entry, second, op, args),
                _ => self.gatekeeper.check_entry(&p.entry, op, args),
            };
            match verdict {
                Ok(()) => {}
                Err(AdmissionError::Conflict(c)) => {
                    self.conflicts.fetch_add(1, Ordering::Relaxed);
                    return Err(TxnError::Conflict(c));
                }
                Err(AdmissionError::Evaluation(e)) => return Err(TxnError::Condition(e)),
            }
        }
        Ok(())
    }
}

/// A shared data structure with optimistic, commutativity-aware transactions.
#[derive(Clone)]
pub struct SpeculativeRuntime {
    shared: Arc<Shared>,
}

impl SpeculativeRuntime {
    /// Wraps a concrete data structure for speculative access, using the
    /// process-wide default admission backend (`SEMCOMMUTE_ADMIT`).
    pub fn new(structure: AnyStructure) -> SpeculativeRuntime {
        SpeculativeRuntime::with_backend(structure, AdmitBackend::default_backend())
    }

    /// Wraps a concrete data structure for speculative access with an
    /// explicit admission backend (see [`AdmitBackend`]). Under
    /// [`AdmitBackend::Bytecode`] the between-condition catalog is compiled
    /// to flat register programs, lazily, once per runtime — every clone of
    /// this runtime shares the compiled cache.
    pub fn with_backend(structure: AnyStructure, backend: AdmitBackend) -> SpeculativeRuntime {
        let interface = structure.interface();
        SpeculativeRuntime {
            shared: Arc::new(Shared {
                structure: Mutex::new(TrackedStructure::new(structure)),
                index: InFlightIndex::new(),
                gatekeeper: CommutativityGatekeeper::with_backend(interface, backend),
                rollback: InverseRollback::new(interface),
                next_txn: AtomicU64::new(1),
                publish_seq: AtomicU64::new(0),
                commit_seq: AtomicU64::new(0),
                begun: AtomicU64::new(0),
                commits: AtomicU64::new(0),
                aborts: AtomicU64::new(0),
                conflicts: AtomicU64::new(0),
                operations: AtomicU64::new(0),
                rollback_failures: AtomicU64::new(0),
                poison: OnceLock::new(),
            }),
        }
    }

    /// Begins a new transaction.
    pub fn begin(&self) -> Transaction {
        self.shared.begun.fetch_add(1, Ordering::Relaxed);
        Transaction {
            runtime: self.clone(),
            id: self.shared.next_txn.fetch_add(1, Ordering::Relaxed),
            entries: Vec::new(),
            scratch: Vec::new(),
            finished: false,
        }
    }

    /// Runs a transaction body, retrying on conflicts up to `max_retries`
    /// times.
    ///
    /// # Errors
    ///
    /// Returns [`TxnError::RetriesExhausted`] if the body keeps conflicting,
    /// or the body's own error if it fails for a non-conflict reason
    /// (non-conflict errors — including [`TxnError::Condition`] — are never
    /// retried).
    pub fn run<T>(
        &self,
        max_retries: usize,
        mut body: impl FnMut(&mut Transaction) -> Result<T, TxnError>,
    ) -> Result<T, TxnError> {
        for _ in 0..=max_retries {
            let mut txn = self.begin();
            match body(&mut txn) {
                Ok(value) => {
                    txn.commit();
                    return Ok(value);
                }
                Err(TxnError::Conflict(_)) => {
                    txn.abort();
                    std::thread::yield_now();
                }
                Err(other) => {
                    txn.abort();
                    return Err(other);
                }
            }
        }
        Err(TxnError::RetriesExhausted)
    }

    /// The current abstract state of the shared structure.
    pub fn snapshot(&self) -> AbstractState {
        self.shared.structure.lock().inner().abstract_state()
    }

    /// Checks the representation invariant of the shared structure.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn check_invariants(&self) -> Result<(), String> {
        self.shared.structure.lock().inner().check_invariants()
    }

    /// Execution statistics so far.
    pub fn stats(&self) -> RuntimeStats {
        let shared = &self.shared;
        RuntimeStats {
            begun: shared.begun.load(Ordering::Relaxed),
            commits: shared.commits.load(Ordering::Relaxed),
            aborts: shared.aborts.load(Ordering::Relaxed),
            conflicts: shared.conflicts.load(Ordering::Relaxed),
            operations: shared.operations.load(Ordering::Relaxed),
            rollback_failures: shared.rollback_failures.load(Ordering::Relaxed),
        }
    }

    /// The poison diagnostic, if a rollback has failed to apply a verified
    /// inverse (see [`TxnError::Poisoned`]). `None` on a healthy runtime.
    pub fn poisoned(&self) -> Option<&str> {
        self.shared.poison.get().map(String::as_str)
    }

    /// Test hook: applies an operation to the structure directly, bypassing
    /// admission, logging, and rollback. Fault injection for the rollback
    /// regression tests — mutating the structure behind a live transaction's
    /// back is exactly the corruption that makes its verified inverses stop
    /// applying.
    #[doc(hidden)]
    pub fn apply_unlogged(&self, op: &str, args: &[Value]) -> Result<Option<Value>, TxnError> {
        Ok(self.shared.structure.lock().apply(op, args)?)
    }

    /// The number of operations currently published by uncommitted
    /// transactions.
    pub fn pending_operations(&self) -> usize {
        self.shared.index.len()
    }

    /// The admission backend this runtime's gatekeeper evaluates
    /// commutativity conditions with.
    pub fn admit_backend(&self) -> AdmitBackend {
        self.shared.gatekeeper.backend()
    }
}

/// An optimistic transaction on a [`SpeculativeRuntime`].
pub struct Transaction {
    runtime: SpeculativeRuntime,
    id: u64,
    /// This transaction's published operations, oldest first — the
    /// per-transaction log. Rollback walks it newest-first; nobody else ever
    /// needs to scan it.
    entries: Vec<Arc<PublishedOp>>,
    /// Reusable buffer for the outstanding operations each admission pass
    /// checks against — cleared after every operation so it pins nothing,
    /// but its capacity persists and the hot path allocates no `Vec`.
    scratch: Vec<Arc<PublishedOp>>,
    finished: bool,
}

impl Transaction {
    /// The transaction identifier.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The number of operations this transaction has executed.
    pub fn operations(&self) -> usize {
        self.entries.len()
    }

    /// Executes one operation inside the transaction.
    ///
    /// # Errors
    ///
    /// Returns [`TxnError::Conflict`] if the operation does not commute with
    /// an operation of another uncommitted transaction (the caller should
    /// abort), [`TxnError::Condition`] if a commutativity condition could not
    /// be evaluated (not retryable), or [`TxnError::Dispatch`] if the
    /// operation itself is invalid.
    pub fn execute(&mut self, op: &str, args: &[Value]) -> Result<Option<Value>, TxnError> {
        if self.finished {
            return Err(TxnError::Finished);
        }
        let shared = &self.runtime.shared;
        if let Some(reason) = shared.poison.get() {
            return Err(TxnError::Poisoned(reason.clone()));
        }
        // One string resolution for the incoming operation; every per-entry
        // check below goes through dense indices.
        let op_idx = shared.gatekeeper.op_index(op);

        // Optimistic phase: evaluate conditions against everything published
        // up to `snap` without touching the structure lock.
        let snap = shared.publish_seq.load(Ordering::Acquire);
        shared.index.others_into(self.id, &mut self.scratch);
        let optimistic = shared.check_against(&self.scratch, op, op_idx, args);
        self.scratch.clear();
        optimistic?;

        // Validated apply: under the structure lock only the operations
        // published after the snapshot remain to be checked.
        let mut structure = shared.structure.lock();
        shared
            .index
            .others_since_into(self.id, snap, &mut self.scratch);
        let validated = shared.check_against(&self.scratch, op, op_idx, args);
        self.scratch.clear();
        if let Err(e) = validated {
            drop(structure);
            return Err(e);
        }

        let pre_state = shared
            .gatekeeper
            .requires_pre_state(op)
            .then(|| structure.state_value().clone());
        let result = structure.apply(op, args)?;
        let seq = shared.publish_seq.load(Ordering::Relaxed) + 1;
        let published = Arc::new(PublishedOp {
            seq,
            op_idx,
            entry: LogEntry {
                txn: self.id,
                op: op.to_string(),
                args: args.to_vec(),
                result: result.clone(),
                pre_state,
            },
        });
        // Publish to the shard *before* the sequence store: an admission that
        // Acquire-loads `seq` must already find the entry in the index.
        shared.index.publish(self.id, Arc::clone(&published));
        shared.publish_seq.store(seq, Ordering::Release);
        drop(structure);

        self.entries.push(published);
        shared.operations.fetch_add(1, Ordering::Relaxed);
        Ok(result)
    }

    /// Commits the transaction: its operations become permanent and stop
    /// constraining other transactions.
    ///
    /// Returns the transaction's **commit ticket** — its position in the
    /// serialization order. The between conditions guarantee that replaying
    /// the committed transactions serially in ticket order reproduces every
    /// recorded return value and the final abstract state (the differential
    /// harness checks exactly this). Commit takes no structure lock and is
    /// O(this transaction's operations).
    pub fn commit(mut self) -> u64 {
        self.finished = true;
        let shared = &self.runtime.shared;
        // The ticket must be drawn *before* the index slot disappears: a
        // transaction that executes a non-commuting operation can only be
        // admitted after this removal, so its own (later) fetch_add is
        // guaranteed a larger ticket — the shard lock release/acquire orders
        // the two RMWs. Removing first would let that transaction draw a
        // smaller ticket and break the replay order.
        let ticket = shared.commit_seq.fetch_add(1, Ordering::Relaxed) + 1;
        if !self.entries.is_empty() {
            shared.index.remove(self.id);
            self.entries.clear();
        }
        shared.commits.fetch_add(1, Ordering::Relaxed);
        ticket
    }

    /// Aborts the transaction: its operations are rolled back with the
    /// verified inverse operations, newest first. A transaction that executed
    /// no operations aborts without taking any lock.
    pub fn abort(mut self) {
        self.finished = true;
        self.rollback();
    }

    fn rollback(&mut self) {
        let shared = &self.runtime.shared;
        shared.aborts.fetch_add(1, Ordering::Relaxed);
        if self.entries.is_empty() {
            // Nothing was published: there is no slot in the index and no
            // effect on the structure, so the abort is a counter bump.
            return;
        }
        // Index removal and inverse application happen under one structure
        // lock acquisition: otherwise a concurrent admission could evaluate
        // against a state that still contains an effect whose log entry has
        // already vanished.
        let mut structure = shared.structure.lock();
        shared.index.remove(self.id);
        for published in self.entries.iter().rev() {
            let entry = &published.entry;
            let Some(inverse) = shared.rollback.inverse_of(&entry.op) else {
                // Observer operations change nothing and need no undo.
                continue;
            };
            let Some((op, args)) = inverse.concrete_call(&entry.args, entry.result.as_ref()) else {
                // Nothing to undo (e.g. `add` returned false).
                continue;
            };
            if let Err(e) = structure.apply(&op, &args) {
                // A verified inverse failed to apply: the structure no
                // longer matches the log (something mutated it outside the
                // protocol, or an invariant broke). Panicking here — while
                // holding the structure lock — used to take the whole
                // process down; instead, poison the runtime so every
                // subsequent operation is refused with a diagnosable
                // [`TxnError::Poisoned`], and stop undoing: applying more
                // inverses to a state we no longer understand could only
                // compound the damage.
                let reason = format!(
                    "rolling back txn {}: verified inverse `{op}` of `{}` was rejected: {e}",
                    self.id, entry.op
                );
                shared.rollback_failures.fetch_add(1, Ordering::Relaxed);
                let _ = shared.poison.set(reason);
                break;
            }
        }
        self.entries.clear();
    }
}

impl Drop for Transaction {
    fn drop(&mut self) {
        if !self.finished {
            self.finished = true;
            self.rollback();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semcommute_logic::ElemId;

    fn set_runtime() -> SpeculativeRuntime {
        SpeculativeRuntime::new(AnyStructure::by_name("HashSet").unwrap())
    }

    #[test]
    fn commuting_transactions_interleave_and_commit() {
        let rt = set_runtime();
        let mut t1 = rt.begin();
        let mut t2 = rt.begin();
        // Interleaved adds of distinct elements commute.
        t1.execute("add", &[Value::elem(1)]).unwrap();
        t2.execute("add", &[Value::elem(2)]).unwrap();
        t1.execute("add", &[Value::elem(3)]).unwrap();
        let first = t1.commit();
        let second = t2.commit();
        assert!(second > first, "commit tickets are strictly increasing");
        let state = rt.snapshot();
        assert_eq!(
            state,
            AbstractState::Set([ElemId(1), ElemId(2), ElemId(3)].into_iter().collect())
        );
        let stats = rt.stats();
        assert_eq!(stats.begun, 2);
        assert_eq!(stats.commits, 2);
        assert_eq!(stats.conflicts, 0);
        assert_eq!(rt.pending_operations(), 0);
    }

    #[test]
    fn conflicting_operation_is_detected_and_abort_rolls_back() {
        let rt = set_runtime();
        let mut t1 = rt.begin();
        let mut t2 = rt.begin();
        t1.execute("add", &[Value::elem(5)]).unwrap();
        // Removing the element t1 speculatively added does not commute.
        let err = t2.execute("remove", &[Value::elem(5)]).unwrap_err();
        assert!(matches!(err, TxnError::Conflict(_)));
        // t2 aborts (it executed nothing), t1 aborts too: its add is undone.
        t2.abort();
        t1.abort();
        assert_eq!(rt.snapshot(), AbstractState::Set(Default::default()));
        let stats = rt.stats();
        assert_eq!(stats.aborts, 2);
        assert_eq!(stats.conflicts, 1);
        assert_eq!(stats.begun, stats.commits + stats.aborts);
    }

    #[test]
    fn dropped_transaction_rolls_back_automatically() {
        let rt = set_runtime();
        {
            let mut t = rt.begin();
            t.execute("add", &[Value::elem(9)]).unwrap();
            // dropped without commit
        }
        assert_eq!(rt.snapshot(), AbstractState::Set(Default::default()));
        assert_eq!(rt.stats().aborts, 1);
    }

    #[test]
    fn run_retries_until_the_conflicting_transaction_finishes() {
        let rt = set_runtime();
        let mut t1 = rt.begin();
        t1.execute("add", &[Value::elem(1)]).unwrap();
        // A competing transaction that wants to remove element 1 conflicts
        // while t1 is live…
        let attempt = rt.run(0, |txn| {
            txn.execute("remove", &[Value::elem(1)]).map(|_| ())
        });
        assert!(matches!(attempt, Err(TxnError::RetriesExhausted)));
        // …but succeeds once t1 commits.
        t1.commit();
        rt.run(3, |txn| {
            txn.execute("remove", &[Value::elem(1)]).map(|_| ())
        })
        .unwrap();
        assert_eq!(rt.snapshot(), AbstractState::Set(Default::default()));
    }

    #[test]
    fn unknown_operation_pairs_fail_fast_without_retries() {
        let rt = set_runtime();
        let mut t1 = rt.begin();
        t1.execute("add", &[Value::elem(1)]).unwrap();
        // With t1's `add` outstanding, an operation the catalog has no
        // condition for must surface as a non-retryable `Condition` error —
        // not spin the full retry budget and report `RetriesExhausted`.
        let mut attempts = 0u32;
        let err = rt
            .run(1_000, |txn| {
                attempts += 1;
                txn.execute("frobnicate", &[Value::elem(1)]).map(|_| ())
            })
            .unwrap_err();
        match err {
            TxnError::Condition(msg) => {
                assert!(
                    msg.contains("no condition for pair add/frobnicate"),
                    "{msg}"
                );
            }
            other => panic!("expected a condition error, got {other:?}"),
        }
        assert_eq!(attempts, 1, "condition errors must not be retried");
        t1.commit();
        // The structure is untouched by the failed attempt.
        assert_eq!(
            rt.snapshot(),
            AbstractState::Set([ElemId(1)].into_iter().collect())
        );
    }

    #[test]
    fn out_of_range_list_index_is_a_dispatch_error_in_a_transaction() {
        // End-to-end version of the structure-level pin: an out-of-range
        // index through `Transaction::execute` is a `Dispatch` error (the
        // transaction stays usable), never an `ArrayList` bounds panic.
        let rt = SpeculativeRuntime::new(AnyStructure::by_name("ArrayList").unwrap());
        let mut t = rt.begin();
        t.execute("addAt", &[Value::Int(0), Value::elem(7)])
            .unwrap();
        for (op, args) in [
            ("get", vec![Value::Int(1)]),
            ("removeAt", vec![Value::Int(1)]),
            ("set", vec![Value::Int(-1), Value::elem(8)]),
            ("addAt", vec![Value::Int(2), Value::elem(8)]),
        ] {
            let err = t.execute(op, &args).unwrap_err();
            match err {
                TxnError::Dispatch(msg) => {
                    assert!(msg.contains("out of range"), "{op}: {msg}");
                }
                other => panic!("{op}: expected a dispatch error, got {other:?}"),
            }
        }
        // The failed dispatches logged nothing, so the commit publishes only
        // the successful `addAt`.
        t.commit();
        assert_eq!(rt.snapshot(), AbstractState::List(vec![ElemId(7)]));
        assert_eq!(rt.stats().commits, 1);
    }

    #[test]
    fn empty_abort_counts_but_leaves_nothing_behind() {
        let rt = set_runtime();
        let t = rt.begin();
        assert_eq!(t.operations(), 0);
        t.abort();
        // An explicit commit of an empty transaction also just counts.
        let t = rt.begin();
        let ticket = t.commit();
        assert!(ticket > 0);
        let stats = rt.stats();
        assert_eq!(stats.begun, 2);
        assert_eq!(stats.commits, 1);
        assert_eq!(stats.aborts, 1);
        assert_eq!(stats.operations, 0);
        assert_eq!(rt.pending_operations(), 0);
    }

    #[test]
    fn empty_abort_is_lock_free() {
        // Hold the structure lock hostage on another thread; an empty abort
        // must still complete because it never touches the lock.
        let rt = set_runtime();
        let hold = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(true));
        let rt2 = rt.clone();
        let hold2 = std::sync::Arc::clone(&hold);
        let blocker = std::thread::spawn(move || {
            let _guard = rt2.shared.structure.lock();
            while hold2.load(Ordering::Relaxed) {
                std::thread::yield_now();
            }
        });
        // Give the blocker time to take the lock.
        while rt.shared.structure.try_lock().is_some() {
            std::thread::yield_now();
        }
        let t = rt.begin();
        t.abort(); // would deadlock here if the empty abort locked
        assert_eq!(rt.stats().aborts, 1);
        hold.store(false, Ordering::Relaxed);
        blocker.join().unwrap();
    }

    #[test]
    fn parallel_disjoint_insertions_produce_the_union() {
        let rt = set_runtime();
        let threads = 4;
        let per_thread = 50u32;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let rt = rt.clone();
                scope.spawn(move || {
                    for i in 0..per_thread {
                        let element = Value::elem(t * per_thread + i + 1);
                        rt.run(16, |txn| {
                            txn.execute("add", std::slice::from_ref(&element))?;
                            txn.execute("contains", std::slice::from_ref(&element))
                        })
                        .unwrap();
                    }
                });
            }
        });
        let state = rt.snapshot();
        assert_eq!(
            state,
            AbstractState::Set((1..=threads * per_thread).map(ElemId).collect())
        );
        assert!(rt.check_invariants().is_ok());
        assert_eq!(rt.stats().commits as u32, threads * per_thread);
        let stats = rt.stats();
        assert_eq!(stats.begun, stats.commits + stats.aborts);
    }

    #[test]
    fn finished_transactions_reject_further_operations() {
        let rt = set_runtime();
        let mut t = rt.begin();
        t.execute("add", &[Value::elem(1)]).unwrap();
        let id = t.id();
        assert!(id > 0);
        t.commit();
        let mut t2 = rt.begin();
        t2.execute("add", &[Value::elem(2)]).unwrap();
        t2.abort();
        // After abort, only the committed element remains.
        assert_eq!(
            rt.snapshot(),
            AbstractState::Set([ElemId(1)].into_iter().collect())
        );
    }

    #[test]
    fn map_runtime_detects_key_conflicts() {
        let rt = SpeculativeRuntime::new(AnyStructure::by_name("HashTable").unwrap());
        let mut t1 = rt.begin();
        let mut t2 = rt.begin();
        t1.execute("put", &[Value::elem(1), Value::elem(10)])
            .unwrap();
        // Different key: fine.
        t2.execute("put", &[Value::elem(2), Value::elem(20)])
            .unwrap();
        // Same key: conflict.
        assert!(matches!(
            t2.execute("get", &[Value::elem(1)]),
            Err(TxnError::Conflict(_))
        ));
        t1.commit();
        t2.commit();
    }

    #[test]
    fn failed_inverse_poisons_the_runtime_instead_of_panicking() {
        let rt = SpeculativeRuntime::new(AnyStructure::by_name("ArrayList").unwrap());
        let mut t = rt.begin();
        t.execute("addAt", &[Value::Int(0), Value::elem(1)])
            .unwrap();
        // Fault injection: empty the list behind the transaction's back, so
        // its verified inverse (`removeAt 0`) no longer applies.
        rt.apply_unlogged("removeAt", &[Value::Int(0)]).unwrap();
        t.abort(); // must poison, not panic (it holds the structure lock)

        let stats = rt.stats();
        assert_eq!(stats.aborts, 1);
        assert_eq!(stats.rollback_failures, 1);
        assert_eq!(stats.begun, stats.commits + stats.aborts);
        let reason = rt.poisoned().expect("runtime is poisoned");
        assert!(reason.contains("removeAt"), "{reason}");
        assert!(reason.contains("addAt"), "{reason}");

        // Every subsequent operation is refused with the diagnostic…
        let mut t2 = rt.begin();
        match t2.execute("size", &[]) {
            Err(TxnError::Poisoned(msg)) => assert!(msg.contains("removeAt"), "{msg}"),
            other => panic!("expected Poisoned, got {other:?}"),
        }
        t2.abort();
        // …and `run` surfaces it without burning the retry budget.
        let mut attempts = 0u32;
        let err = rt
            .run(1_000, |txn| {
                attempts += 1;
                txn.execute("size", &[]).map(|_| ())
            })
            .unwrap_err();
        assert!(matches!(err, TxnError::Poisoned(_)));
        assert_eq!(attempts, 1, "poisoned runtimes must not be retried");
    }

    #[test]
    fn healthy_runtimes_report_no_poison() {
        let rt = set_runtime();
        rt.run(1, |txn| txn.execute("add", &[Value::elem(1)]).map(|_| ()))
            .unwrap();
        assert_eq!(rt.poisoned(), None);
        assert_eq!(rt.stats().rollback_failures, 0);
    }

    #[test]
    fn pre_state_is_projected_not_cloned_per_op() {
        // `add`/`contains` need no pre-state; `remove` and `size` do. Check
        // the published entries carry exactly that.
        let rt = set_runtime();
        let mut setup = rt.begin();
        setup.execute("add", &[Value::elem(1)]).unwrap();
        setup.commit();
        let mut t = rt.begin();
        t.execute("add", &[Value::elem(2)]).unwrap();
        t.execute("remove", &[Value::elem(1)]).unwrap();
        t.execute("size", &[]).unwrap();
        let states: Vec<bool> = t
            .entries
            .iter()
            .map(|p| p.entry.pre_state.is_some())
            .collect();
        assert_eq!(states, vec![false, true, true]);
        // The `remove` pre-state is the abstract state just before it ran.
        let pre = t.entries[1].entry.pre_state.clone().unwrap();
        assert_eq!(
            AbstractState::from_value(&pre).unwrap(),
            AbstractState::Set([ElemId(1), ElemId(2)].into_iter().collect())
        );
        t.commit();
    }
}
