//! The speculative transaction executor.
//!
//! Transactions execute operations on a shared data structure optimistically:
//! before an operation runs, the commutativity gatekeeper checks (using the
//! verified *between* conditions) that it semantically commutes with every
//! operation executed by other uncommitted transactions. If it does, the
//! operation executes and is logged together with its return value and
//! (where a condition needs it) a pre-state projection; if it does not, the
//! transaction observes a conflict and aborts, rolling back its own logged
//! operations with the verified *inverse* operations. Because all interleaved
//! operations of concurrent transactions pairwise commute at the abstract
//! level, the committed execution is equivalent to some serial execution of
//! the committed transactions — the correctness argument the paper's client
//! systems rely on.
//!
//! # Concurrency protocol
//!
//! The runtime keeps the structure behind one mutex but keeps the *admission*
//! work — the expensive part, one condition evaluation per outstanding
//! operation — off that mutex. Uncommitted operations live in the sharded
//! [`InFlightIndex`]; a monotone publish sequence (`publish_seq`) orders them.
//! [`Transaction::execute`] runs in two phases:
//!
//! 1. **Optimistic phase (no structure lock).** Load `publish_seq` with
//!    `Acquire` as a snapshot, read every other transaction's published
//!    operations from the index (shard read locks only), and evaluate the
//!    between conditions lock-free.
//! 2. **Validated apply (structure lock).** Take the structure lock, give
//!    the operations published *after* the snapshot their first full check,
//!    and **re-anchor** every state-reading condition at the live state —
//!    pre-state-anchored certificates alone do not compose across the
//!    operations admitted since an entry was logged (see
//!    `Shared::check_against_locked`). Then apply the operation, publish
//!    its log entry to the index, and bump `publish_seq` with a `Release`
//!    store — in that order, so any operation whose sequence number a later
//!    `Acquire` load observes is already visible in its shard.
//!
//! Publishing under the structure lock makes apply-and-publish atomic: no
//! operation can take effect without being visible to the revalidation pass
//! of every concurrent admission. Commit takes **no** structure lock — the
//! committed effects are already applied, so commit only removes the
//! transaction's slot from the index (O(own operations)). Abort removes the
//! slot *and* applies the verified inverses, both under the structure lock,
//! so no admission can run against a state that still contains an effect
//! whose log entry has already disappeared.
//!
//! Lock order: mode gate before structure mutex before index shard lock,
//! never the reverse.
//!
//! # Contention management
//!
//! Speculation is a bet, and under hot-key contention it loses: the
//! abort/rollback machinery costs more than the coarse lock it replaced.
//! When the fallback is enabled (the default; `SEMCOMMUTE_FALLBACK=off`
//! restores the unconditional engine), every transaction finish feeds a
//! sliding-window abort account ([`ContentionState`]) and the runtime
//! degrades the structure to a coarse mutex section when a window's abort
//! rate crosses the threshold. A transaction picks its path once, at its
//! first operation: speculative transactions hold the [`ModeGate`] shared
//! for their lifetime, degraded transactions hold it exclusive — the gate's
//! drain barrier guarantees the two kinds never overlap, and because both
//! draw their commit ticket *before* releasing the gate, ticket order
//! remains a valid serialization order across mode transitions (the full
//! argument lives in `docs/ARCHITECTURE.md`). Probing periodically
//! re-enables speculation when contention subsides. The
//! [`retry loop`](SpeculativeRuntime::run) backs off exponentially with
//! deterministic per-transaction jitter instead of spinning, and a
//! [`FaultPlan`] can drive every recovery path deterministically.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use parking_lot::Mutex;
use semcommute_logic::Value;
use semcommute_spec::AbstractState;

use crate::contention::{BackoffOptions, ContentionState, FallbackOptions, Mode, ModeGate};
use crate::fault::FaultPlan;
use crate::gatekeeper::{AdmissionError, AdmitBackend, CommutativityGatekeeper, Conflict};
use crate::index::{InFlightIndex, PublishedOp};
use crate::log::LogEntry;
use crate::rollback::InverseRollback;
use crate::structure::{AnyStructure, DispatchError, TrackedStructure};

/// An error observed by a transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxnError {
    /// The operation does not commute with an uncommitted operation of
    /// another transaction; the transaction should abort (and typically
    /// retry).
    Conflict(Conflict),
    /// A commutativity condition could not be evaluated (unknown operation
    /// pair, or a condition referencing information the log entry does not
    /// carry). This is a configuration error, not a speculative outcome:
    /// [`SpeculativeRuntime::run`] does **not** retry it.
    Condition(String),
    /// The operation itself was rejected (unknown name, bad argument).
    Dispatch(String),
    /// The transaction has already been committed or aborted.
    Finished,
    /// The retry budget of [`SpeculativeRuntime::run`] was exhausted. The
    /// [`RetryReport`] diagnoses the thrash: attempts made, the structure,
    /// the last conflicting operation pair, and the time spent in backoff.
    RetriesExhausted(RetryReport),
    /// The runtime is poisoned: a verified inverse failed to apply during a
    /// rollback, so the structure may hold effects of an aborted transaction.
    /// The payload diagnoses the failed inverse. Like the PR 7 coarse-lock
    /// poisoning this is sticky — every subsequent operation is refused —
    /// but it surfaces as an error instead of a panic, so the caller decides
    /// how to wind down. [`SpeculativeRuntime::run`] does **not** retry it.
    Poisoned(String),
}

impl fmt::Display for TxnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxnError::Conflict(c) => write!(f, "conflict: {c}"),
            TxnError::Condition(e) => write!(f, "condition evaluation failed: {e}"),
            TxnError::Dispatch(e) => write!(f, "operation rejected: {e}"),
            TxnError::Finished => write!(f, "transaction already finished"),
            TxnError::RetriesExhausted(report) => {
                write!(f, "retry budget exhausted: {report}")
            }
            TxnError::Poisoned(e) => write!(f, "runtime poisoned: {e}"),
        }
    }
}

impl std::error::Error for TxnError {}

/// Diagnosis of an exhausted retry budget (see
/// [`TxnError::RetriesExhausted`]): enough to tell a genuinely hot key from
/// a stuck peer transaction without re-running under a profiler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryReport {
    /// Transactions begun by the [`SpeculativeRuntime::run`] call
    /// (`max_retries + 1`).
    pub attempts: u64,
    /// The structure the transactions ran against.
    pub structure: &'static str,
    /// The conflict the final attempt aborted on. `None` only if the body
    /// returned a synthesized conflict carrying no information, which the
    /// runtime itself never does.
    pub last_conflict: Option<Conflict>,
    /// Total time the attempts spent asleep in exponential backoff (yields
    /// are not counted).
    pub backoff: Duration,
}

impl fmt::Display for RetryReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} attempts on `{}` with {:?} spent in backoff",
            self.attempts, self.structure, self.backoff
        )?;
        match &self.last_conflict {
            Some(conflict) => {
                let (incoming, logged) = conflict.op_pair();
                write!(
                    f,
                    "; last conflict `{incoming}` vs `{logged}` of transaction {}",
                    conflict.with_txn
                )
            }
            None => write!(f, "; no conflict recorded"),
        }
    }
}

impl From<DispatchError> for TxnError {
    fn from(e: DispatchError) -> Self {
        TxnError::Dispatch(e.to_string())
    }
}

/// Execution statistics of a [`SpeculativeRuntime`].
///
/// The counters satisfy `commits + aborts == begun` once every transaction
/// has finished (committed, aborted, or been dropped).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RuntimeStats {
    /// Transactions begun ([`SpeculativeRuntime::begin`], including the
    /// attempts made by [`SpeculativeRuntime::run`]).
    pub begun: u64,
    /// Committed transactions.
    pub commits: u64,
    /// Aborted transactions. Every non-committed finish counts: explicit
    /// [`Transaction::abort`], the rollback performed when a `Transaction` is
    /// dropped uncommitted, and each retry of [`SpeculativeRuntime::run`] —
    /// **including** transactions that executed zero operations (such aborts
    /// are lock-free but still counted, so the `commits + aborts == begun`
    /// identity holds).
    pub aborts: u64,
    /// Conflicts detected by the gatekeeper.
    pub conflicts: u64,
    /// Operations executed (including those later rolled back).
    pub operations: u64,
    /// Rollbacks that failed because a verified inverse did not apply. Each
    /// failure poisons the runtime (see [`TxnError::Poisoned`]); a non-zero
    /// count means the structure may hold effects of aborted transactions.
    pub rollback_failures: u64,
    /// Commits that ran through the degraded coarse-lock section instead of
    /// speculating (a subset of `commits`).
    pub degraded_commits: u64,
    /// Execution-mode transitions applied by the contention state machine
    /// (`Speculative → Degraded → Probing → …`); zero while the fallback is
    /// disabled or contention never crosses the threshold.
    pub mode_switches: u64,
}

/// Construction-time knobs of a [`SpeculativeRuntime`]
/// (see [`SpeculativeRuntime::with_options`]).
///
/// [`Default`] resolves every knob from its environment variable
/// (`SEMCOMMUTE_ADMIT`, `SEMCOMMUTE_FALLBACK`, `SEMCOMMUTE_BACKOFF`), read
/// once per process, with no fault plan attached.
#[derive(Debug, Clone)]
pub struct RuntimeOptions {
    /// How admission evaluates between conditions (see [`AdmitBackend`]).
    pub backend: AdmitBackend,
    /// The abort-rate-driven coarse-lock fallback (see [`FallbackOptions`]).
    pub fallback: FallbackOptions,
    /// Backoff between conflicted retry attempts (see [`BackoffOptions`]).
    pub backoff: BackoffOptions,
    /// An optional deterministic fault schedule (see [`FaultPlan`]); `None`
    /// costs one branch per operation.
    pub faults: Option<Arc<FaultPlan>>,
}

impl Default for RuntimeOptions {
    fn default() -> RuntimeOptions {
        RuntimeOptions {
            backend: AdmitBackend::default_backend(),
            fallback: FallbackOptions::default_options(),
            backoff: BackoffOptions::default_options(),
            faults: None,
        }
    }
}

struct Shared {
    structure: Mutex<TrackedStructure>,
    /// The concrete structure's name, captured before the structure moves
    /// behind its mutex — retry reports shouldn't need a lock acquisition.
    structure_name: &'static str,
    options: RuntimeOptions,
    /// The per-structure abort account and mode state machine.
    contention: ContentionState,
    /// The speculative/degraded drain barrier (see [`ModeGate`]).
    gate: ModeGate,
    /// Global operation ordinal, drawn per `execute` only while a fault plan
    /// is attached — the coordinate system faults are scheduled in.
    op_ordinal: AtomicU64,
    index: InFlightIndex,
    gatekeeper: CommutativityGatekeeper,
    rollback: InverseRollback,
    next_txn: AtomicU64,
    /// Monotone count of published operations. Written only under the
    /// structure lock (with `Release`); admission reads it with `Acquire` to
    /// snapshot which operations its optimistic pass has covered.
    publish_seq: AtomicU64,
    /// Monotone commit tickets, the serialization order certified by the
    /// between conditions (see [`Transaction::commit`]).
    commit_seq: AtomicU64,
    begun: AtomicU64,
    commits: AtomicU64,
    aborts: AtomicU64,
    conflicts: AtomicU64,
    operations: AtomicU64,
    rollback_failures: AtomicU64,
    degraded_commits: AtomicU64,
    /// Set (once) when a rollback fails to apply a verified inverse: the
    /// structure may hold effects of an aborted transaction, so every
    /// subsequent `execute` is refused with [`TxnError::Poisoned`]. Sticky
    /// by design, mirroring the PR 7 coarse-lock poisoning — but surfaced
    /// as an error, never a panic, because the failure is detected while
    /// holding the structure lock.
    poison: OnceLock<String>,
}

impl Shared {
    /// Classifies the incoming operation against a batch of published
    /// operations, translating admission outcomes to transaction errors.
    fn check_against(
        &self,
        published: &[Arc<PublishedOp>],
        op: &str,
        op_idx: Option<u16>,
        args: &[Value],
    ) -> Result<(), TxnError> {
        for p in published {
            // Both operation names resolved to dense indices already (the
            // logged one at publish time, the incoming one once per batch by
            // the caller): the per-entry check hashes no strings.
            let verdict = match (p.op_idx, op_idx) {
                (Some(first), Some(second)) => self
                    .gatekeeper
                    .check_indexed(first, &p.entry, second, op, args),
                _ => self.gatekeeper.check_entry(&p.entry, op, args),
            };
            match verdict {
                Ok(()) => {}
                Err(AdmissionError::Conflict(c)) => {
                    self.conflicts.fetch_add(1, Ordering::Relaxed);
                    return Err(TxnError::Conflict(c));
                }
                Err(AdmissionError::Evaluation(e)) => return Err(TxnError::Condition(e)),
            }
        }
        Ok(())
    }

    /// The under-lock admission pass. Entries published after `snap` get the
    /// full between-condition check — the optimistic pass never saw them.
    /// In addition, **every** live entry whose condition reads the abstract
    /// state is re-anchored: the condition must also hold with `s1` bound to
    /// the current state (`state`, read under the held structure lock).
    ///
    /// The re-anchor closes a composition hole in pairwise admission. A
    /// condition certified against a logged entry's captured pre-state
    /// certifies swapping the pair adjacent *at that state*; once other
    /// admitted operations separate the pair, the certificate is anchored to
    /// a state that no longer exists, and individually-valid certificates
    /// need not compose. Concretely: a logged `get(3)` over
    /// `[1, 1, 1, 1, 1, 1, 10]` admits any one `removeAt` below it (one left
    /// shift keeps index 3 reading a `1`), but three such removals — each
    /// certified against the same stale capture — compose to a shift of
    /// three and move the `10` into the observed slot, breaking serial
    /// replay. Anchoring each certificate at the live state as well keeps
    /// every logged, state-dependent certificate current at each
    /// intermediate state, so the certificates compose inductively.
    /// State-free conditions are exempt: their verdict cannot drift, and the
    /// gatekeeper skips their re-evaluation.
    fn check_against_locked(
        &self,
        published: &[Arc<PublishedOp>],
        op: &str,
        op_idx: Option<u16>,
        args: &[Value],
        snap: u64,
        state: &Value,
    ) -> Result<(), TxnError> {
        for p in published {
            let fresh = p.seq > snap;
            let verdict = match (p.op_idx, op_idx) {
                (Some(first), Some(second)) => {
                    let pre = if fresh {
                        self.gatekeeper
                            .check_indexed(first, &p.entry, second, op, args)
                    } else {
                        Ok(())
                    };
                    pre.and_then(|()| {
                        self.gatekeeper
                            .check_indexed_at(first, &p.entry, second, op, args, state)
                    })
                }
                _ => {
                    let pre = if fresh {
                        self.gatekeeper.check_entry(&p.entry, op, args)
                    } else {
                        Ok(())
                    };
                    pre.and_then(|()| self.gatekeeper.check_entry_at(&p.entry, op, args, state))
                }
            };
            match verdict {
                Ok(()) => {}
                Err(AdmissionError::Conflict(c)) => {
                    self.conflicts.fetch_add(1, Ordering::Relaxed);
                    return Err(TxnError::Conflict(c));
                }
                Err(AdmissionError::Evaluation(e)) => return Err(TxnError::Condition(e)),
            }
        }
        Ok(())
    }
}

/// A shared data structure with optimistic, commutativity-aware transactions.
#[derive(Clone)]
pub struct SpeculativeRuntime {
    shared: Arc<Shared>,
}

impl SpeculativeRuntime {
    /// Wraps a concrete data structure for speculative access, with every
    /// knob at its process-wide default (`SEMCOMMUTE_ADMIT`,
    /// `SEMCOMMUTE_FALLBACK`, `SEMCOMMUTE_BACKOFF`).
    pub fn new(structure: AnyStructure) -> SpeculativeRuntime {
        SpeculativeRuntime::with_options(structure, RuntimeOptions::default())
    }

    /// Wraps a concrete data structure for speculative access with an
    /// explicit admission backend (see [`AdmitBackend`]). Under
    /// [`AdmitBackend::Bytecode`] the between-condition catalog is compiled
    /// to flat register programs, lazily, once per runtime — every clone of
    /// this runtime shares the compiled cache. The remaining knobs keep
    /// their process-wide defaults.
    pub fn with_backend(structure: AnyStructure, backend: AdmitBackend) -> SpeculativeRuntime {
        SpeculativeRuntime::with_options(
            structure,
            RuntimeOptions {
                backend,
                ..RuntimeOptions::default()
            },
        )
    }

    /// Wraps a concrete data structure for speculative access with explicit
    /// [`RuntimeOptions`].
    pub fn with_options(structure: AnyStructure, options: RuntimeOptions) -> SpeculativeRuntime {
        let interface = structure.interface();
        let structure_name = structure.name();
        SpeculativeRuntime {
            shared: Arc::new(Shared {
                structure: Mutex::new(TrackedStructure::new(structure)),
                structure_name,
                contention: ContentionState::new(options.fallback),
                gate: ModeGate::new(),
                op_ordinal: AtomicU64::new(0),
                index: InFlightIndex::new(),
                gatekeeper: CommutativityGatekeeper::with_backend(interface, options.backend),
                rollback: InverseRollback::new(interface),
                options,
                next_txn: AtomicU64::new(1),
                publish_seq: AtomicU64::new(0),
                commit_seq: AtomicU64::new(0),
                begun: AtomicU64::new(0),
                commits: AtomicU64::new(0),
                aborts: AtomicU64::new(0),
                conflicts: AtomicU64::new(0),
                operations: AtomicU64::new(0),
                rollback_failures: AtomicU64::new(0),
                degraded_commits: AtomicU64::new(0),
                poison: OnceLock::new(),
            }),
        }
    }

    /// Begins a new transaction.
    pub fn begin(&self) -> Transaction {
        self.shared.begun.fetch_add(1, Ordering::Relaxed);
        Transaction {
            runtime: self.clone(),
            id: self.shared.next_txn.fetch_add(1, Ordering::Relaxed),
            entries: Vec::new(),
            scratch: Vec::new(),
            mode: TxnMode::Pending,
            finished: false,
        }
    }

    /// Runs a transaction body, retrying on conflicts up to `max_retries`
    /// times. Conflicted attempts back off per the runtime's
    /// [`BackoffOptions`]: the first few retries only yield, then sleeps
    /// grow exponentially (bounded, jittered deterministically per
    /// transaction) so a pile-up on a hot key spreads out instead of
    /// re-colliding in lockstep.
    ///
    /// # Errors
    ///
    /// Returns [`TxnError::RetriesExhausted`] — carrying a [`RetryReport`] —
    /// if the body keeps conflicting, or the body's own error if it fails
    /// for a non-conflict reason (non-conflict errors — including
    /// [`TxnError::Condition`] — are never retried).
    pub fn run<T>(
        &self,
        max_retries: usize,
        mut body: impl FnMut(&mut Transaction) -> Result<T, TxnError>,
    ) -> Result<T, TxnError> {
        let backoff = self.shared.options.backoff;
        let mut attempts = 0u64;
        let mut slept = Duration::ZERO;
        let mut last_conflict = None;
        for attempt in 0..=max_retries {
            let mut txn = self.begin();
            let txn_id = txn.id;
            attempts += 1;
            match body(&mut txn) {
                Ok(value) => {
                    txn.commit();
                    return Ok(value);
                }
                Err(TxnError::Conflict(conflict)) => {
                    txn.abort();
                    last_conflict = Some(conflict);
                    slept += backoff.wait(txn_id, attempt.min(u32::MAX as usize) as u32);
                }
                Err(other) => {
                    txn.abort();
                    return Err(other);
                }
            }
        }
        Err(TxnError::RetriesExhausted(RetryReport {
            attempts,
            structure: self.shared.structure_name,
            last_conflict,
            backoff: slept,
        }))
    }

    /// The current abstract state of the shared structure.
    pub fn snapshot(&self) -> AbstractState {
        self.shared.structure.lock().inner().abstract_state()
    }

    /// Checks the representation invariant of the shared structure.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn check_invariants(&self) -> Result<(), String> {
        self.shared.structure.lock().inner().check_invariants()
    }

    /// Execution statistics so far.
    pub fn stats(&self) -> RuntimeStats {
        let shared = &self.shared;
        RuntimeStats {
            begun: shared.begun.load(Ordering::Relaxed),
            commits: shared.commits.load(Ordering::Relaxed),
            aborts: shared.aborts.load(Ordering::Relaxed),
            conflicts: shared.conflicts.load(Ordering::Relaxed),
            operations: shared.operations.load(Ordering::Relaxed),
            rollback_failures: shared.rollback_failures.load(Ordering::Relaxed),
            degraded_commits: shared.degraded_commits.load(Ordering::Relaxed),
            mode_switches: shared.contention.mode_switches(),
        }
    }

    /// The structure's current execution mode. Always [`Mode::Speculative`]
    /// while the fallback is disabled. Advisory: by the time the caller
    /// looks at the value a transition may already have landed.
    pub fn mode(&self) -> Mode {
        self.shared.contention.mode()
    }

    /// The options this runtime was constructed with.
    pub fn options(&self) -> &RuntimeOptions {
        &self.shared.options
    }

    /// The poison diagnostic, if a rollback has failed to apply a verified
    /// inverse (see [`TxnError::Poisoned`]). `None` on a healthy runtime.
    pub fn poisoned(&self) -> Option<&str> {
        self.shared.poison.get().map(String::as_str)
    }

    /// Test hook: applies an operation to the structure directly, bypassing
    /// admission, logging, and rollback. Fault injection for the rollback
    /// regression tests — mutating the structure behind a live transaction's
    /// back is exactly the corruption that makes its verified inverses stop
    /// applying.
    #[doc(hidden)]
    pub fn apply_unlogged(&self, op: &str, args: &[Value]) -> Result<Option<Value>, TxnError> {
        Ok(self.shared.structure.lock().apply(op, args)?)
    }

    /// The number of operations currently published by uncommitted
    /// transactions.
    pub fn pending_operations(&self) -> usize {
        self.shared.index.len()
    }

    /// The admission backend this runtime's gatekeeper evaluates
    /// commutativity conditions with.
    pub fn admit_backend(&self) -> AdmitBackend {
        self.shared.gatekeeper.backend()
    }
}

/// Which path a transaction is executing on. Chosen once, at the first
/// operation (sticky): re-deciding per operation would let one transaction
/// straddle a mode transition and see a half-speculative, half-degraded
/// world.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TxnMode {
    /// No operation executed yet; no gate side held.
    Pending,
    /// Optimistic execution; holds the [`ModeGate`] shared until finish
    /// (only if the fallback is enabled — disabled, the gate is never
    /// touched).
    Speculative,
    /// Coarse-lock execution; holds the [`ModeGate`] exclusive until finish.
    Degraded,
}

/// An optimistic transaction on a [`SpeculativeRuntime`].
pub struct Transaction {
    runtime: SpeculativeRuntime,
    id: u64,
    /// This transaction's published operations, oldest first — the
    /// per-transaction log. Rollback walks it newest-first; nobody else ever
    /// needs to scan it. Degraded transactions log here too (for rollback),
    /// but never publish to the index.
    entries: Vec<Arc<PublishedOp>>,
    /// Reusable buffer for the outstanding operations each admission pass
    /// checks against — cleared after every operation so it pins nothing,
    /// but its capacity persists and the hot path allocates no `Vec`.
    scratch: Vec<Arc<PublishedOp>>,
    mode: TxnMode,
    finished: bool,
}

impl Transaction {
    /// The transaction identifier.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The number of operations this transaction has executed.
    pub fn operations(&self) -> usize {
        self.entries.len()
    }

    /// Executes one operation inside the transaction.
    ///
    /// # Errors
    ///
    /// Returns [`TxnError::Conflict`] if the operation does not commute with
    /// an operation of another uncommitted transaction (the caller should
    /// abort), [`TxnError::Condition`] if a commutativity condition could not
    /// be evaluated (not retryable), or [`TxnError::Dispatch`] if the
    /// operation itself is invalid.
    pub fn execute(&mut self, op: &str, args: &[Value]) -> Result<Option<Value>, TxnError> {
        if self.finished {
            return Err(TxnError::Finished);
        }
        if let Some(reason) = self.runtime.shared.poison.get() {
            return Err(TxnError::Poisoned(reason.clone()));
        }
        // The fault coordinate system: a global operation ordinal, drawn
        // only while a plan is attached (a plain runtime pays one branch).
        let ordinal = match &self.runtime.shared.options.faults {
            Some(faults) => {
                let ordinal = self
                    .runtime
                    .shared
                    .op_ordinal
                    .fetch_add(1, Ordering::Relaxed)
                    + 1;
                faults.fire_panic(self.id, ordinal);
                ordinal
            }
            None => 0,
        };
        if self.mode == TxnMode::Pending {
            self.enter();
        }
        match self.mode {
            TxnMode::Speculative => self.execute_speculative(op, args, ordinal),
            TxnMode::Degraded => self.execute_degraded(op, args),
            TxnMode::Pending => unreachable!("enter() always picks a path"),
        }
    }

    /// Picks this transaction's execution path — called exactly once, at the
    /// first operation. The mode flag is advisory; what makes the choice
    /// safe is the gate side acquired *with* it, re-checked after entry:
    /// a transaction that read a stale mode blocks on the gate until the
    /// other side finishes, re-reads the mode, and re-routes. In particular
    /// a speculative entry that raced a degradation cannot execute against
    /// the structure while any degraded transaction runs.
    fn enter(&mut self) {
        let shared = &self.runtime.shared;
        if !shared.options.fallback.enabled {
            // Fallback off: today's engine, gate never touched.
            self.mode = TxnMode::Speculative;
            return;
        }
        loop {
            if shared.contention.mode() == Mode::Degraded {
                shared.gate.enter_exclusive();
                if shared.contention.mode() == Mode::Degraded {
                    self.mode = TxnMode::Degraded;
                    return;
                }
                // The structure left Degraded while we queued: speculate.
                shared.gate.exit_exclusive();
            } else {
                shared.gate.enter_shared();
                if shared.contention.mode() != Mode::Degraded {
                    self.mode = TxnMode::Speculative;
                    return;
                }
                // Degraded landed while we entered: take the coarse path.
                shared.gate.exit_shared();
            }
        }
    }

    /// Finish bookkeeping for both commit and abort: feed the contention
    /// account, then release the gate side held since the first operation.
    /// The caller has already drawn its commit ticket (commit) or finished
    /// its rollback (abort) — releasing the gate is the last thing a
    /// transaction does, which is what orders cross-mode ticket draws.
    fn leave(&mut self, aborted: bool) {
        let shared = &self.runtime.shared;
        match self.mode {
            TxnMode::Pending => {}
            TxnMode::Speculative => {
                if shared.options.fallback.enabled {
                    shared.contention.record_speculative_finish(aborted);
                    shared.gate.exit_shared();
                }
            }
            TxnMode::Degraded => {
                shared.contention.record_degraded_finish();
                shared.gate.exit_exclusive();
            }
        }
        self.mode = TxnMode::Pending;
    }

    /// The optimistic path: two-phase admission, apply, publish.
    fn execute_speculative(
        &mut self,
        op: &str,
        args: &[Value],
        ordinal: u64,
    ) -> Result<Option<Value>, TxnError> {
        let shared = &self.runtime.shared;
        if ordinal != 0 {
            if let Some(faults) = &shared.options.faults {
                if faults.fire_forced_conflict(self.id, ordinal) {
                    shared.conflicts.fetch_add(1, Ordering::Relaxed);
                    return Err(TxnError::Conflict(Conflict {
                        with_txn: 0,
                        logged_op: "<fault-injection>".to_string(),
                        incoming_op: op.to_string(),
                    }));
                }
            }
        }
        // One string resolution for the incoming operation; every per-entry
        // check below goes through dense indices.
        let op_idx = shared.gatekeeper.op_index(op);

        // Optimistic phase: evaluate conditions against everything published
        // up to `snap` without touching the structure lock.
        let snap = shared.publish_seq.load(Ordering::Acquire);
        shared.index.others_into(self.id, &mut self.scratch);
        let optimistic = shared.check_against(&self.scratch, op, op_idx, args);
        self.scratch.clear();
        optimistic?;

        // Validated apply: under the structure lock, operations published
        // after the snapshot get their first full check, and every
        // state-reading condition is re-anchored at the live state (see
        // `check_against_locked`).
        let mut structure = shared.structure.lock();
        shared.index.others_into(self.id, &mut self.scratch);
        let validated = shared.check_against_locked(
            &self.scratch,
            op,
            op_idx,
            args,
            snap,
            structure.state_value(),
        );
        self.scratch.clear();
        if let Err(e) = validated {
            drop(structure);
            return Err(e);
        }

        let pre_state = shared
            .gatekeeper
            .requires_pre_state(op)
            .then(|| structure.state_value().clone());
        let result = structure.apply(op, args)?;
        let seq = shared.publish_seq.load(Ordering::Relaxed) + 1;
        let published = Arc::new(PublishedOp {
            seq,
            op_idx,
            entry: LogEntry {
                txn: self.id,
                op: op.to_string(),
                args: args.to_vec(),
                result: result.clone(),
                pre_state,
            },
        });
        // Publish to the shard *before* the sequence store: an admission that
        // Acquire-loads `seq` must already find the entry in the index.
        shared.index.publish(self.id, Arc::clone(&published));
        if ordinal != 0 {
            if let Some(faults) = &shared.options.faults {
                // Stretch the entry-visible-but-sequence-unadvanced state.
                faults.fire_delayed_publish(self.id, ordinal);
            }
        }
        shared.publish_seq.store(seq, Ordering::Release);
        drop(structure);

        self.entries.push(published);
        shared.operations.fetch_add(1, Ordering::Relaxed);
        Ok(result)
    }

    /// The degraded path: the coarse-lock discipline of
    /// [`CoarseLockRuntime`](crate::CoarseLockRuntime) inside the
    /// speculative engine. The gate is held exclusively (no speculative
    /// transaction is in flight — see [`Transaction::enter`]), so there is
    /// nothing to admit against and no pre-state to project; operations are
    /// logged locally for inverse rollback but never published to the
    /// in-flight index.
    fn execute_degraded(&mut self, op: &str, args: &[Value]) -> Result<Option<Value>, TxnError> {
        let shared = &self.runtime.shared;
        // The structure mutex still guards against lock-path bystanders
        // (snapshots, invariant checks, unlogged test writes).
        let result = shared.structure.lock().apply(op, args)?;
        self.entries.push(Arc::new(PublishedOp {
            seq: 0,
            op_idx: None,
            entry: LogEntry {
                txn: self.id,
                op: op.to_string(),
                args: args.to_vec(),
                result: result.clone(),
                pre_state: None,
            },
        }));
        shared.operations.fetch_add(1, Ordering::Relaxed);
        Ok(result)
    }

    /// Commits the transaction: its operations become permanent and stop
    /// constraining other transactions.
    ///
    /// Returns the transaction's **commit ticket** — its position in the
    /// serialization order. The between conditions guarantee that replaying
    /// the committed transactions serially in ticket order reproduces every
    /// recorded return value and the final abstract state (the differential
    /// harness checks exactly this). Commit takes no structure lock and is
    /// O(this transaction's operations).
    pub fn commit(mut self) -> u64 {
        self.finished = true;
        let shared = &self.runtime.shared;
        // The ticket must be drawn *before* the index slot disappears: a
        // transaction that executes a non-commuting operation can only be
        // admitted after this removal, so its own (later) fetch_add is
        // guaranteed a larger ticket — the shard lock release/acquire orders
        // the two RMWs. Removing first would let that transaction draw a
        // smaller ticket and break the replay order. It is also drawn before
        // `leave` releases the gate, which is what serializes tickets across
        // mode transitions: a transaction on the other gate side begins
        // strictly after this release, so its ticket is strictly later.
        let ticket = shared.commit_seq.fetch_add(1, Ordering::Relaxed) + 1;
        if !self.entries.is_empty() {
            if self.mode == TxnMode::Degraded {
                // Degraded operations were never published; the log was only
                // kept in case of rollback.
                shared.degraded_commits.fetch_add(1, Ordering::Relaxed);
            } else {
                shared.index.remove(self.id);
            }
            self.entries.clear();
        } else if self.mode == TxnMode::Degraded {
            shared.degraded_commits.fetch_add(1, Ordering::Relaxed);
        }
        shared.commits.fetch_add(1, Ordering::Relaxed);
        self.leave(false);
        ticket
    }

    /// Aborts the transaction: its operations are rolled back with the
    /// verified inverse operations, newest first. A transaction that executed
    /// no operations aborts without taking any lock.
    pub fn abort(mut self) {
        self.finished = true;
        self.rollback();
    }

    fn rollback(&mut self) {
        let shared = &self.runtime.shared;
        shared.aborts.fetch_add(1, Ordering::Relaxed);
        if self.entries.is_empty() {
            // Nothing was published: there is no slot in the index and no
            // effect on the structure, so the abort is a counter bump (plus
            // the gate release if an admission-refused first operation
            // already picked a path).
            self.leave(true);
            return;
        }
        {
            // Index removal and inverse application happen under one
            // structure lock acquisition: otherwise a concurrent admission
            // could evaluate against a state that still contains an effect
            // whose log entry has already vanished.
            let mut structure = shared.structure.lock();
            if self.mode != TxnMode::Degraded {
                shared.index.remove(self.id);
            }
            let injected = shared
                .options
                .faults
                .as_ref()
                .is_some_and(|faults| faults.fire_rollback_failure(self.id));
            if injected {
                // Fault injection: behave exactly as if the first inverse
                // had been rejected.
                let reason = format!(
                    "rolling back txn {}: injected rollback failure (fault plan)",
                    self.id
                );
                shared.rollback_failures.fetch_add(1, Ordering::Relaxed);
                let _ = shared.poison.set(reason);
            } else {
                for published in self.entries.iter().rev() {
                    let entry = &published.entry;
                    let Some(inverse) = shared.rollback.inverse_of(&entry.op) else {
                        // Observer operations change nothing and need no undo.
                        continue;
                    };
                    let Some((op, args)) =
                        inverse.concrete_call(&entry.args, entry.result.as_ref())
                    else {
                        // Nothing to undo (e.g. `add` returned false).
                        continue;
                    };
                    if let Err(e) = structure.apply(&op, &args) {
                        // A verified inverse failed to apply: the structure no
                        // longer matches the log (something mutated it outside
                        // the protocol, or an invariant broke). Panicking here
                        // — while holding the structure lock — used to take
                        // the whole process down; instead, poison the runtime
                        // so every subsequent operation is refused with a
                        // diagnosable [`TxnError::Poisoned`], and stop
                        // undoing: applying more inverses to a state we no
                        // longer understand could only compound the damage.
                        let reason = format!(
                            "rolling back txn {}: verified inverse `{op}` of `{}` was rejected: {e}",
                            self.id, entry.op
                        );
                        shared.rollback_failures.fetch_add(1, Ordering::Relaxed);
                        let _ = shared.poison.set(reason);
                        break;
                    }
                }
            }
            self.entries.clear();
        }
        self.leave(true);
    }
}

impl Drop for Transaction {
    fn drop(&mut self) {
        if !self.finished {
            self.finished = true;
            self.rollback();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semcommute_logic::ElemId;

    fn set_runtime() -> SpeculativeRuntime {
        SpeculativeRuntime::new(AnyStructure::by_name("HashSet").unwrap())
    }

    #[test]
    fn commuting_transactions_interleave_and_commit() {
        let rt = set_runtime();
        let mut t1 = rt.begin();
        let mut t2 = rt.begin();
        // Interleaved adds of distinct elements commute.
        t1.execute("add", &[Value::elem(1)]).unwrap();
        t2.execute("add", &[Value::elem(2)]).unwrap();
        t1.execute("add", &[Value::elem(3)]).unwrap();
        let first = t1.commit();
        let second = t2.commit();
        assert!(second > first, "commit tickets are strictly increasing");
        let state = rt.snapshot();
        assert_eq!(
            state,
            AbstractState::Set([ElemId(1), ElemId(2), ElemId(3)].into_iter().collect())
        );
        let stats = rt.stats();
        assert_eq!(stats.begun, 2);
        assert_eq!(stats.commits, 2);
        assert_eq!(stats.conflicts, 0);
        assert_eq!(rt.pending_operations(), 0);
    }

    #[test]
    fn conflicting_operation_is_detected_and_abort_rolls_back() {
        let rt = set_runtime();
        let mut t1 = rt.begin();
        let mut t2 = rt.begin();
        t1.execute("add", &[Value::elem(5)]).unwrap();
        // Removing the element t1 speculatively added does not commute.
        let err = t2.execute("remove", &[Value::elem(5)]).unwrap_err();
        assert!(matches!(err, TxnError::Conflict(_)));
        // t2 aborts (it executed nothing), t1 aborts too: its add is undone.
        t2.abort();
        t1.abort();
        assert_eq!(rt.snapshot(), AbstractState::Set(Default::default()));
        let stats = rt.stats();
        assert_eq!(stats.aborts, 2);
        assert_eq!(stats.conflicts, 1);
        assert_eq!(stats.begun, stats.commits + stats.aborts);
    }

    #[test]
    fn dropped_transaction_rolls_back_automatically() {
        let rt = set_runtime();
        {
            let mut t = rt.begin();
            t.execute("add", &[Value::elem(9)]).unwrap();
            // dropped without commit
        }
        assert_eq!(rt.snapshot(), AbstractState::Set(Default::default()));
        assert_eq!(rt.stats().aborts, 1);
    }

    #[test]
    fn run_retries_until_the_conflicting_transaction_finishes() {
        let rt = set_runtime();
        let mut t1 = rt.begin();
        t1.execute("add", &[Value::elem(1)]).unwrap();
        // A competing transaction that wants to remove element 1 conflicts
        // while t1 is live…
        let attempt = rt.run(0, |txn| {
            txn.execute("remove", &[Value::elem(1)]).map(|_| ())
        });
        assert!(matches!(attempt, Err(TxnError::RetriesExhausted(_))));
        // …but succeeds once t1 commits.
        t1.commit();
        rt.run(3, |txn| {
            txn.execute("remove", &[Value::elem(1)]).map(|_| ())
        })
        .unwrap();
        assert_eq!(rt.snapshot(), AbstractState::Set(Default::default()));
    }

    #[test]
    fn exhausted_retries_return_a_diagnosable_report() {
        let rt = SpeculativeRuntime::with_options(
            AnyStructure::by_name("HashSet").unwrap(),
            RuntimeOptions {
                // Yield-only backoff keeps the test instant and pins that
                // un-slept retries report Duration::ZERO.
                backoff: BackoffOptions::off(),
                ..RuntimeOptions::default()
            },
        );
        let mut t1 = rt.begin();
        t1.execute("add", &[Value::elem(1)]).unwrap();
        let err = rt
            .run(2, |txn| {
                txn.execute("remove", &[Value::elem(1)]).map(|_| ())
            })
            .unwrap_err();
        let TxnError::RetriesExhausted(report) = err else {
            panic!("expected RetriesExhausted, got {err:?}");
        };
        assert_eq!(report.attempts, 3, "max_retries + 1 attempts");
        assert_eq!(report.structure, "HashSet");
        assert_eq!(report.backoff, Duration::ZERO);
        let conflict = report.last_conflict.as_ref().expect("conflict recorded");
        assert_eq!(conflict.op_pair(), ("remove", "add"));
        assert_eq!(conflict.with_txn, t1.id());
        let rendered = TxnError::RetriesExhausted(report).to_string();
        assert!(rendered.contains("retry budget exhausted"), "{rendered}");
        assert!(rendered.contains("3 attempts on `HashSet`"), "{rendered}");
        assert!(rendered.contains("`remove` vs `add`"), "{rendered}");
        t1.commit();
    }

    #[test]
    fn unknown_operation_pairs_fail_fast_without_retries() {
        let rt = set_runtime();
        let mut t1 = rt.begin();
        t1.execute("add", &[Value::elem(1)]).unwrap();
        // With t1's `add` outstanding, an operation the catalog has no
        // condition for must surface as a non-retryable `Condition` error —
        // not spin the full retry budget and report `RetriesExhausted`.
        let mut attempts = 0u32;
        let err = rt
            .run(1_000, |txn| {
                attempts += 1;
                txn.execute("frobnicate", &[Value::elem(1)]).map(|_| ())
            })
            .unwrap_err();
        match err {
            TxnError::Condition(msg) => {
                assert!(
                    msg.contains("no condition for pair add/frobnicate"),
                    "{msg}"
                );
            }
            other => panic!("expected a condition error, got {other:?}"),
        }
        assert_eq!(attempts, 1, "condition errors must not be retried");
        t1.commit();
        // The structure is untouched by the failed attempt.
        assert_eq!(
            rt.snapshot(),
            AbstractState::Set([ElemId(1)].into_iter().collect())
        );
    }

    #[test]
    fn out_of_range_list_index_is_a_dispatch_error_in_a_transaction() {
        // End-to-end version of the structure-level pin: an out-of-range
        // index through `Transaction::execute` is a `Dispatch` error (the
        // transaction stays usable), never an `ArrayList` bounds panic.
        let rt = SpeculativeRuntime::new(AnyStructure::by_name("ArrayList").unwrap());
        let mut t = rt.begin();
        t.execute("addAt", &[Value::Int(0), Value::elem(7)])
            .unwrap();
        for (op, args) in [
            ("get", vec![Value::Int(1)]),
            ("removeAt", vec![Value::Int(1)]),
            ("set", vec![Value::Int(-1), Value::elem(8)]),
            ("addAt", vec![Value::Int(2), Value::elem(8)]),
        ] {
            let err = t.execute(op, &args).unwrap_err();
            match err {
                TxnError::Dispatch(msg) => {
                    assert!(msg.contains("out of range"), "{op}: {msg}");
                }
                other => panic!("{op}: expected a dispatch error, got {other:?}"),
            }
        }
        // The failed dispatches logged nothing, so the commit publishes only
        // the successful `addAt`.
        t.commit();
        assert_eq!(rt.snapshot(), AbstractState::List(vec![ElemId(7)]));
        assert_eq!(rt.stats().commits, 1);
    }

    #[test]
    fn empty_abort_counts_but_leaves_nothing_behind() {
        let rt = set_runtime();
        let t = rt.begin();
        assert_eq!(t.operations(), 0);
        t.abort();
        // An explicit commit of an empty transaction also just counts.
        let t = rt.begin();
        let ticket = t.commit();
        assert!(ticket > 0);
        let stats = rt.stats();
        assert_eq!(stats.begun, 2);
        assert_eq!(stats.commits, 1);
        assert_eq!(stats.aborts, 1);
        assert_eq!(stats.operations, 0);
        assert_eq!(rt.pending_operations(), 0);
    }

    #[test]
    fn empty_abort_is_lock_free() {
        // Hold the structure lock hostage on another thread; an empty abort
        // must still complete because it never touches the lock.
        let rt = set_runtime();
        let hold = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(true));
        let rt2 = rt.clone();
        let hold2 = std::sync::Arc::clone(&hold);
        let blocker = std::thread::spawn(move || {
            let _guard = rt2.shared.structure.lock();
            while hold2.load(Ordering::Relaxed) {
                std::thread::yield_now();
            }
        });
        // Give the blocker time to take the lock.
        while rt.shared.structure.try_lock().is_some() {
            std::thread::yield_now();
        }
        let t = rt.begin();
        t.abort(); // would deadlock here if the empty abort locked
        assert_eq!(rt.stats().aborts, 1);
        hold.store(false, Ordering::Relaxed);
        blocker.join().unwrap();
    }

    #[test]
    fn parallel_disjoint_insertions_produce_the_union() {
        let rt = set_runtime();
        let threads = 4;
        let per_thread = 50u32;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let rt = rt.clone();
                scope.spawn(move || {
                    for i in 0..per_thread {
                        let element = Value::elem(t * per_thread + i + 1);
                        rt.run(16, |txn| {
                            txn.execute("add", std::slice::from_ref(&element))?;
                            txn.execute("contains", std::slice::from_ref(&element))
                        })
                        .unwrap();
                    }
                });
            }
        });
        let state = rt.snapshot();
        assert_eq!(
            state,
            AbstractState::Set((1..=threads * per_thread).map(ElemId).collect())
        );
        assert!(rt.check_invariants().is_ok());
        assert_eq!(rt.stats().commits as u32, threads * per_thread);
        let stats = rt.stats();
        assert_eq!(stats.begun, stats.commits + stats.aborts);
    }

    #[test]
    fn finished_transactions_reject_further_operations() {
        let rt = set_runtime();
        let mut t = rt.begin();
        t.execute("add", &[Value::elem(1)]).unwrap();
        let id = t.id();
        assert!(id > 0);
        t.commit();
        let mut t2 = rt.begin();
        t2.execute("add", &[Value::elem(2)]).unwrap();
        t2.abort();
        // After abort, only the committed element remains.
        assert_eq!(
            rt.snapshot(),
            AbstractState::Set([ElemId(1)].into_iter().collect())
        );
    }

    #[test]
    fn map_runtime_detects_key_conflicts() {
        let rt = SpeculativeRuntime::new(AnyStructure::by_name("HashTable").unwrap());
        let mut t1 = rt.begin();
        let mut t2 = rt.begin();
        t1.execute("put", &[Value::elem(1), Value::elem(10)])
            .unwrap();
        // Different key: fine.
        t2.execute("put", &[Value::elem(2), Value::elem(20)])
            .unwrap();
        // Same key: conflict.
        assert!(matches!(
            t2.execute("get", &[Value::elem(1)]),
            Err(TxnError::Conflict(_))
        ));
        t1.commit();
        t2.commit();
    }

    #[test]
    fn failed_inverse_poisons_the_runtime_instead_of_panicking() {
        let rt = SpeculativeRuntime::new(AnyStructure::by_name("ArrayList").unwrap());
        let mut t = rt.begin();
        t.execute("addAt", &[Value::Int(0), Value::elem(1)])
            .unwrap();
        // Fault injection: empty the list behind the transaction's back, so
        // its verified inverse (`removeAt 0`) no longer applies.
        rt.apply_unlogged("removeAt", &[Value::Int(0)]).unwrap();
        t.abort(); // must poison, not panic (it holds the structure lock)

        let stats = rt.stats();
        assert_eq!(stats.aborts, 1);
        assert_eq!(stats.rollback_failures, 1);
        assert_eq!(stats.begun, stats.commits + stats.aborts);
        let reason = rt.poisoned().expect("runtime is poisoned");
        assert!(reason.contains("removeAt"), "{reason}");
        assert!(reason.contains("addAt"), "{reason}");

        // Every subsequent operation is refused with the diagnostic…
        let mut t2 = rt.begin();
        match t2.execute("size", &[]) {
            Err(TxnError::Poisoned(msg)) => assert!(msg.contains("removeAt"), "{msg}"),
            other => panic!("expected Poisoned, got {other:?}"),
        }
        t2.abort();
        // …and `run` surfaces it without burning the retry budget.
        let mut attempts = 0u32;
        let err = rt
            .run(1_000, |txn| {
                attempts += 1;
                txn.execute("size", &[]).map(|_| ())
            })
            .unwrap_err();
        assert!(matches!(err, TxnError::Poisoned(_)));
        assert_eq!(attempts, 1, "poisoned runtimes must not be retried");
    }

    #[test]
    fn healthy_runtimes_report_no_poison() {
        let rt = set_runtime();
        rt.run(1, |txn| txn.execute("add", &[Value::elem(1)]).map(|_| ()))
            .unwrap();
        assert_eq!(rt.poisoned(), None);
        assert_eq!(rt.stats().rollback_failures, 0);
    }

    #[test]
    fn pre_state_is_projected_not_cloned_per_op() {
        // `add`/`contains` need no pre-state; `remove` and `size` do. Check
        // the published entries carry exactly that.
        let rt = set_runtime();
        let mut setup = rt.begin();
        setup.execute("add", &[Value::elem(1)]).unwrap();
        setup.commit();
        let mut t = rt.begin();
        t.execute("add", &[Value::elem(2)]).unwrap();
        t.execute("remove", &[Value::elem(1)]).unwrap();
        t.execute("size", &[]).unwrap();
        let states: Vec<bool> = t
            .entries
            .iter()
            .map(|p| p.entry.pre_state.is_some())
            .collect();
        assert_eq!(states, vec![false, true, true]);
        // The `remove` pre-state is the abstract state just before it ran.
        let pre = t.entries[1].entry.pre_state.clone().unwrap();
        assert_eq!(
            AbstractState::from_value(&pre).unwrap(),
            AbstractState::Set([ElemId(1), ElemId(2)].into_iter().collect())
        );
        t.commit();
    }
}
