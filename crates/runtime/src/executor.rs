//! The speculative transaction executor.
//!
//! Transactions execute operations on a shared data structure optimistically:
//! before an operation runs, the commutativity gatekeeper checks (using the
//! verified *between* conditions) that it semantically commutes with every
//! operation executed by other uncommitted transactions. If it does, the
//! operation executes and is logged together with its return value and
//! pre-state; if it does not, the transaction observes a conflict and aborts,
//! rolling back its own logged operations with the verified *inverse*
//! operations. Because all interleaved operations of concurrent transactions
//! pairwise commute at the abstract level, the committed execution is
//! equivalent to some serial execution of the committed transactions — the
//! correctness argument the paper's client systems rely on.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use semcommute_logic::Value;
use semcommute_spec::AbstractState;

use crate::gatekeeper::{CommutativityGatekeeper, Conflict};
use crate::log::{LogEntry, OperationLog};
use crate::rollback::InverseRollback;
use crate::structure::{AnyStructure, DispatchError};

/// An error observed by a transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxnError {
    /// The operation does not commute with an uncommitted operation of
    /// another transaction; the transaction should abort (and typically
    /// retry).
    Conflict(Conflict),
    /// The operation itself was rejected (unknown name, bad argument).
    Dispatch(String),
    /// The transaction has already been committed or aborted.
    Finished,
    /// The retry budget of [`SpeculativeRuntime::run`] was exhausted.
    RetriesExhausted,
}

impl fmt::Display for TxnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxnError::Conflict(c) => write!(f, "conflict: {c}"),
            TxnError::Dispatch(e) => write!(f, "operation rejected: {e}"),
            TxnError::Finished => write!(f, "transaction already finished"),
            TxnError::RetriesExhausted => write!(f, "retry budget exhausted"),
        }
    }
}

impl std::error::Error for TxnError {}

impl From<DispatchError> for TxnError {
    fn from(e: DispatchError) -> Self {
        TxnError::Dispatch(e.to_string())
    }
}

/// Execution statistics of a [`SpeculativeRuntime`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RuntimeStats {
    /// Committed transactions.
    pub commits: u64,
    /// Aborted transactions.
    pub aborts: u64,
    /// Conflicts detected by the gatekeeper.
    pub conflicts: u64,
    /// Operations executed (including those later rolled back).
    pub operations: u64,
}

struct Shared {
    structure: Mutex<AnyStructure>,
    log: Mutex<OperationLog>,
    gatekeeper: CommutativityGatekeeper,
    rollback: InverseRollback,
    next_txn: AtomicU64,
    stats: Mutex<RuntimeStats>,
}

/// A shared data structure with optimistic, commutativity-aware transactions.
#[derive(Clone)]
pub struct SpeculativeRuntime {
    shared: Arc<Shared>,
}

impl SpeculativeRuntime {
    /// Wraps a concrete data structure for speculative access.
    pub fn new(structure: AnyStructure) -> SpeculativeRuntime {
        let interface = structure.interface();
        SpeculativeRuntime {
            shared: Arc::new(Shared {
                structure: Mutex::new(structure),
                log: Mutex::new(OperationLog::new()),
                gatekeeper: CommutativityGatekeeper::new(interface),
                rollback: InverseRollback::new(interface),
                next_txn: AtomicU64::new(1),
                stats: Mutex::new(RuntimeStats::default()),
            }),
        }
    }

    /// Begins a new transaction.
    pub fn begin(&self) -> Transaction {
        Transaction {
            runtime: self.clone(),
            id: self.shared.next_txn.fetch_add(1, Ordering::Relaxed),
            finished: false,
        }
    }

    /// Runs a transaction body, retrying on conflicts up to `max_retries`
    /// times.
    ///
    /// # Errors
    ///
    /// Returns [`TxnError::RetriesExhausted`] if the body keeps conflicting,
    /// or the body's own error if it fails for a non-conflict reason.
    pub fn run<T>(
        &self,
        max_retries: usize,
        mut body: impl FnMut(&mut Transaction) -> Result<T, TxnError>,
    ) -> Result<T, TxnError> {
        for _ in 0..=max_retries {
            let mut txn = self.begin();
            match body(&mut txn) {
                Ok(value) => {
                    txn.commit();
                    return Ok(value);
                }
                Err(TxnError::Conflict(_)) => {
                    txn.abort();
                    std::thread::yield_now();
                }
                Err(other) => {
                    txn.abort();
                    return Err(other);
                }
            }
        }
        Err(TxnError::RetriesExhausted)
    }

    /// The current abstract state of the shared structure.
    pub fn snapshot(&self) -> AbstractState {
        self.shared.structure.lock().abstract_state()
    }

    /// Checks the representation invariant of the shared structure.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn check_invariants(&self) -> Result<(), String> {
        self.shared.structure.lock().check_invariants()
    }

    /// Execution statistics so far.
    pub fn stats(&self) -> RuntimeStats {
        *self.shared.stats.lock()
    }

    /// The number of operations currently logged by uncommitted transactions.
    pub fn pending_operations(&self) -> usize {
        self.shared.log.lock().len()
    }
}

/// An optimistic transaction on a [`SpeculativeRuntime`].
pub struct Transaction {
    runtime: SpeculativeRuntime,
    id: u64,
    finished: bool,
}

impl Transaction {
    /// The transaction identifier.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Executes one operation inside the transaction.
    ///
    /// # Errors
    ///
    /// Returns [`TxnError::Conflict`] if the operation does not commute with
    /// an operation of another uncommitted transaction (the caller should
    /// abort), or [`TxnError::Dispatch`] if the operation itself is invalid.
    pub fn execute(&mut self, op: &str, args: &[Value]) -> Result<Option<Value>, TxnError> {
        if self.finished {
            return Err(TxnError::Finished);
        }
        let shared = &self.runtime.shared;
        // Take the structure lock first, then the log lock, everywhere, so the
        // lock order is consistent.
        let mut structure = shared.structure.lock();
        let mut log = shared.log.lock();
        if let Err(conflict) = shared.gatekeeper.admit(&log, self.id, op, args) {
            shared.stats.lock().conflicts += 1;
            return Err(TxnError::Conflict(conflict));
        }
        let pre_state = structure.abstract_state();
        let result = structure.apply(op, args)?;
        log.record(LogEntry {
            txn: self.id,
            op: op.to_string(),
            args: args.to_vec(),
            result: result.clone(),
            pre_state,
        });
        shared.stats.lock().operations += 1;
        Ok(result)
    }

    /// Commits the transaction: its operations become permanent and stop
    /// constraining other transactions.
    pub fn commit(mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        let shared = &self.runtime.shared;
        let _structure = shared.structure.lock();
        shared.log.lock().remove_transaction(self.id);
        shared.stats.lock().commits += 1;
    }

    /// Aborts the transaction: its operations are rolled back with the
    /// verified inverse operations, newest first.
    pub fn abort(mut self) {
        self.finished = true;
        self.rollback();
    }

    fn rollback(&mut self) {
        let shared = &self.runtime.shared;
        let mut structure = shared.structure.lock();
        let entries = shared.log.lock().remove_transaction(self.id);
        if !entries.is_empty() {
            shared
                .rollback
                .undo(&mut structure, &entries)
                .expect("verified inverses always apply");
        }
        shared.stats.lock().aborts += 1;
    }
}

impl Drop for Transaction {
    fn drop(&mut self) {
        if !self.finished {
            self.finished = true;
            self.rollback();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semcommute_logic::ElemId;

    fn set_runtime() -> SpeculativeRuntime {
        SpeculativeRuntime::new(AnyStructure::by_name("HashSet").unwrap())
    }

    #[test]
    fn commuting_transactions_interleave_and_commit() {
        let rt = set_runtime();
        let mut t1 = rt.begin();
        let mut t2 = rt.begin();
        // Interleaved adds of distinct elements commute.
        t1.execute("add", &[Value::elem(1)]).unwrap();
        t2.execute("add", &[Value::elem(2)]).unwrap();
        t1.execute("add", &[Value::elem(3)]).unwrap();
        t1.commit();
        t2.commit();
        let state = rt.snapshot();
        assert_eq!(
            state,
            AbstractState::Set([ElemId(1), ElemId(2), ElemId(3)].into_iter().collect())
        );
        let stats = rt.stats();
        assert_eq!(stats.commits, 2);
        assert_eq!(stats.conflicts, 0);
        assert_eq!(rt.pending_operations(), 0);
    }

    #[test]
    fn conflicting_operation_is_detected_and_abort_rolls_back() {
        let rt = set_runtime();
        let mut t1 = rt.begin();
        let mut t2 = rt.begin();
        t1.execute("add", &[Value::elem(5)]).unwrap();
        // Removing the element t1 speculatively added does not commute.
        let err = t2.execute("remove", &[Value::elem(5)]).unwrap_err();
        assert!(matches!(err, TxnError::Conflict(_)));
        // t2 aborts (it executed nothing), t1 aborts too: its add is undone.
        t2.abort();
        t1.abort();
        assert_eq!(rt.snapshot(), AbstractState::Set(Default::default()));
        let stats = rt.stats();
        assert_eq!(stats.aborts, 2);
        assert_eq!(stats.conflicts, 1);
    }

    #[test]
    fn dropped_transaction_rolls_back_automatically() {
        let rt = set_runtime();
        {
            let mut t = rt.begin();
            t.execute("add", &[Value::elem(9)]).unwrap();
            // dropped without commit
        }
        assert_eq!(rt.snapshot(), AbstractState::Set(Default::default()));
        assert_eq!(rt.stats().aborts, 1);
    }

    #[test]
    fn run_retries_until_the_conflicting_transaction_finishes() {
        let rt = set_runtime();
        let mut t1 = rt.begin();
        t1.execute("add", &[Value::elem(1)]).unwrap();
        // A competing transaction that wants to remove element 1 conflicts
        // while t1 is live…
        let attempt = rt.run(0, |txn| {
            txn.execute("remove", &[Value::elem(1)]).map(|_| ())
        });
        assert!(matches!(attempt, Err(TxnError::RetriesExhausted)));
        // …but succeeds once t1 commits.
        t1.commit();
        rt.run(3, |txn| {
            txn.execute("remove", &[Value::elem(1)]).map(|_| ())
        })
        .unwrap();
        assert_eq!(rt.snapshot(), AbstractState::Set(Default::default()));
    }

    #[test]
    fn parallel_disjoint_insertions_produce_the_union() {
        let rt = set_runtime();
        let threads = 4;
        let per_thread = 50u32;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let rt = rt.clone();
                scope.spawn(move || {
                    for i in 0..per_thread {
                        let element = Value::elem(t * per_thread + i + 1);
                        rt.run(16, |txn| {
                            txn.execute("add", std::slice::from_ref(&element))?;
                            txn.execute("contains", std::slice::from_ref(&element))
                        })
                        .unwrap();
                    }
                });
            }
        });
        let state = rt.snapshot();
        assert_eq!(
            state,
            AbstractState::Set((1..=threads * per_thread).map(ElemId).collect())
        );
        assert!(rt.check_invariants().is_ok());
        assert_eq!(rt.stats().commits as u32, threads * per_thread);
    }

    #[test]
    fn finished_transactions_reject_further_operations() {
        let rt = set_runtime();
        let mut t = rt.begin();
        t.execute("add", &[Value::elem(1)]).unwrap();
        let id = t.id();
        assert!(id > 0);
        t.commit();
        let mut t2 = rt.begin();
        t2.execute("add", &[Value::elem(2)]).unwrap();
        t2.abort();
        // After abort, only the committed element remains.
        assert_eq!(
            rt.snapshot(),
            AbstractState::Set([ElemId(1)].into_iter().collect())
        );
    }

    #[test]
    fn map_runtime_detects_key_conflicts() {
        let rt = SpeculativeRuntime::new(AnyStructure::by_name("HashTable").unwrap());
        let mut t1 = rt.begin();
        let mut t2 = rt.begin();
        t1.execute("put", &[Value::elem(1), Value::elem(10)])
            .unwrap();
        // Different key: fine.
        t2.execute("put", &[Value::elem(2), Value::elem(20)])
            .unwrap();
        // Same key: conflict.
        assert!(matches!(
            t2.execute("get", &[Value::elem(1)]),
            Err(TxnError::Conflict(_))
        ));
        t1.commit();
        t2.commit();
    }
}
