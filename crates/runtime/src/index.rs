//! The sharded in-flight operation index: which uncommitted operations are
//! currently outstanding, readable without the structure lock.
//!
//! The seed runtime kept one flat [`OperationLog`](crate::OperationLog)
//! behind the same mutex protecting the data structure, so gatekeeper
//! admission — the expensive part of every speculative operation — fully
//! serialized the runtime. The index replaces it with the sharded claim-table
//! discipline of `prover::queue`: transactions hash into one of
//! [`N_SHARDS`] `RwLock`-protected maps keyed by transaction id, each map
//! holding that transaction's published operations in execution order.
//!
//! * **Admission reads** take one shard read lock at a time, clone the `Arc`s
//!   out, and evaluate conditions entirely outside any lock.
//! * **Publishing** (one write lock on the publisher's own shard) happens
//!   while the publisher holds the structure lock, which makes
//!   apply-and-publish atomic; the runtime's monotone publish sequence lets
//!   admission revalidate only the entries that appeared after its optimistic
//!   read (see [`InFlightIndex::others_since`]).
//! * **Commit** removes the transaction's slot from its own shard — O(own
//!   operations), no structure lock, no scan of anyone else's entries.
//!
//! Lock order: the structure mutex, if held, is always acquired *before* any
//! shard lock, and no path acquires the structure mutex while holding a
//! shard lock.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use crate::log::LogEntry;

/// Shard count of the index. Sixteen matches the prover's verdict-cache and
/// claim-table split and keeps publisher/reader collisions rare at the
/// thread counts the runtime targets.
pub const N_SHARDS: usize = 16;

/// One published operation: a log entry tagged with its global publish
/// sequence number (assigned under the structure lock, so sequence order is
/// application order).
#[derive(Debug)]
pub struct PublishedOp {
    /// Position in the global publish order (1-based; 0 is "before any op").
    pub seq: u64,
    /// The logged operation's dense index in the gatekeeper's operation
    /// universe, resolved once at publish time so admission never hashes the
    /// operation name (see
    /// [`CommutativityGatekeeper::op_index`](crate::CommutativityGatekeeper::op_index)).
    pub op_idx: Option<u16>,
    /// The logged operation.
    pub entry: LogEntry,
}

type Shard = RwLock<HashMap<u64, Vec<Arc<PublishedOp>>>>;

/// The sharded index of uncommitted transactions' published operations.
#[derive(Default)]
pub struct InFlightIndex {
    shards: [Shard; N_SHARDS],
    /// Cached total of published operations, maintained by
    /// [`publish`](InFlightIndex::publish) / [`remove`](InFlightIndex::remove)
    /// under the respective shard's write lock. Before this cache,
    /// [`len`](InFlightIndex::len) read-locked all sixteen shards and summed
    /// slot lengths — an O(shards + entries) scan on what stats dashboards
    /// and the runtime-monitoring loops treat as a cheap gauge.
    count: AtomicUsize,
}

impl std::fmt::Debug for InFlightIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InFlightIndex")
            .field("published_ops", &self.len())
            .finish()
    }
}

impl InFlightIndex {
    /// Creates an empty index.
    pub fn new() -> InFlightIndex {
        InFlightIndex::default()
    }

    fn shard(&self, txn: u64) -> &Shard {
        &self.shards[(txn % N_SHARDS as u64) as usize]
    }

    /// Appends a published operation to `txn`'s slot (creating the slot on
    /// the transaction's first operation).
    pub fn publish(&self, txn: u64, op: Arc<PublishedOp>) {
        let mut guard = self.shard(txn).write();
        guard.entry(txn).or_default().push(op);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Removes `txn`'s slot, returning how many operations it held. A
    /// transaction that never published has no slot; removing it touches no
    /// lock state beyond its own shard.
    pub fn remove(&self, txn: u64) -> usize {
        let removed = self
            .shard(txn)
            .write()
            .remove(&txn)
            .map_or(0, |entries| entries.len());
        if removed > 0 {
            self.count.fetch_sub(removed, Ordering::Relaxed);
        }
        removed
    }

    /// All operations of transactions other than `txn`, as `Arc` clones —
    /// the caller evaluates conditions against them without holding any
    /// shard lock.
    pub fn others(&self, txn: u64) -> Vec<Arc<PublishedOp>> {
        let mut out = Vec::new();
        self.others_into(txn, &mut out);
        out
    }

    /// [`others`](InFlightIndex::others) into a caller-supplied buffer — the
    /// executor reuses one buffer per transaction so the admission fast path
    /// allocates nothing. The buffer is cleared first.
    pub fn others_into(&self, txn: u64, out: &mut Vec<Arc<PublishedOp>>) {
        out.clear();
        for shard in &self.shards {
            let guard = shard.read();
            for (&owner, entries) in guard.iter() {
                if owner != txn {
                    out.extend(entries.iter().cloned());
                }
            }
        }
    }

    /// Operations of other transactions with `seq > bound` — the entries
    /// published after an optimistic admission pass took its sequence
    /// snapshot. Each transaction's entries are appended in sequence order,
    /// so only slot tails are scanned.
    pub fn others_since(&self, txn: u64, bound: u64) -> Vec<Arc<PublishedOp>> {
        let mut out = Vec::new();
        self.others_since_into(txn, bound, &mut out);
        out
    }

    /// [`others_since`](InFlightIndex::others_since) into a caller-supplied
    /// buffer, cleared first (see [`others_into`](InFlightIndex::others_into)).
    pub fn others_since_into(&self, txn: u64, bound: u64, out: &mut Vec<Arc<PublishedOp>>) {
        out.clear();
        for shard in &self.shards {
            let guard = shard.read();
            for (&owner, entries) in guard.iter() {
                if owner == txn {
                    continue;
                }
                let tail = entries.iter().rev().take_while(|op| op.seq > bound);
                out.extend(tail.cloned());
            }
        }
    }

    /// The total number of published (uncommitted) operations — an O(1)
    /// atomic load of the cached count.
    pub fn len(&self) -> usize {
        self.count.load(Ordering::Relaxed)
    }

    /// The O(shards + entries) recount [`len`](InFlightIndex::len) replaced,
    /// kept as the test oracle for the cached count.
    #[cfg(test)]
    fn len_by_scan(&self) -> usize {
        self.shards
            .iter()
            .map(|shard| shard.read().values().map(Vec::len).sum::<usize>())
            .sum()
    }

    /// Whether no uncommitted operations are outstanding.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semcommute_logic::Value;

    fn op(txn: u64, seq: u64) -> Arc<PublishedOp> {
        Arc::new(PublishedOp {
            seq,
            op_idx: None,
            entry: LogEntry {
                txn,
                op: "add".into(),
                args: vec![Value::elem(seq as u32)],
                result: Some(Value::Bool(true)),
                pre_state: None,
            },
        })
    }

    #[test]
    fn publish_remove_and_counts() {
        let index = InFlightIndex::new();
        assert!(index.is_empty());
        index.publish(1, op(1, 1));
        index.publish(2, op(2, 2));
        index.publish(1, op(1, 3));
        assert_eq!(index.len(), 3);
        assert_eq!(index.remove(1), 2);
        assert_eq!(index.remove(1), 0);
        assert_eq!(index.len(), 1);
        assert_eq!(index.len(), index.len_by_scan());
    }

    #[test]
    fn cached_len_matches_a_full_scan_under_concurrent_churn() {
        let index = Arc::new(InFlightIndex::new());
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let index = Arc::clone(&index);
                scope.spawn(move || {
                    for round in 0..200u64 {
                        let txn = t * 1_000 + round;
                        index.publish(txn, op(txn, round + 1));
                        index.publish(txn, op(txn, round + 2));
                        if round % 2 == 0 {
                            assert_eq!(index.remove(txn), 2);
                        }
                    }
                });
            }
        });
        assert_eq!(index.len(), index.len_by_scan());
        assert_eq!(index.len(), 4 * 100 * 2);
    }

    #[test]
    fn others_excludes_own_entries() {
        let index = InFlightIndex::new();
        // Transactions 1 and 17 land in the same shard (17 % 16 == 1).
        index.publish(1, op(1, 1));
        index.publish(17, op(17, 2));
        index.publish(5, op(5, 3));
        let seen: Vec<u64> = index.others(17).iter().map(|o| o.entry.txn).collect();
        assert_eq!(seen.len(), 2);
        assert!(seen.contains(&1) && seen.contains(&5));
    }

    #[test]
    fn others_since_scans_only_tails() {
        let index = InFlightIndex::new();
        index.publish(1, op(1, 1));
        index.publish(1, op(1, 4));
        index.publish(2, op(2, 5));
        index.publish(1, op(1, 7));
        let fresh: Vec<u64> = index.others_since(3, 4).iter().map(|o| o.seq).collect();
        assert_eq!(fresh.len(), 2);
        assert!(fresh.contains(&5) && fresh.contains(&7));
        assert!(index.others_since(3, 7).is_empty());
        // The bound is exclusive and own entries never appear.
        assert!(index.others_since(1, 0).iter().all(|o| o.entry.txn == 2));
    }
}
