//! Rolling back speculative operations: inverse operations vs. snapshots.
//!
//! Section 1.3 of the paper argues that executing verified inverse operations
//! "can be substantially more efficient than alternate approaches (such as
//! pessimistically saving the data structure state before operations execute,
//! then restoring the state)". This module provides both mechanisms so that
//! the benchmark suite can reproduce that comparison:
//!
//! * [`InverseRollback`] undoes a transaction's logged operations, newest
//!   first, by invoking the verified inverse of each (cost proportional to
//!   the number of operations to undo);
//! * [`SnapshotRollback`] captures the whole abstract state up front and
//!   rebuilds the structure from it on abort (cost proportional to the size
//!   of the data structure, paid even when no abort happens).

use std::collections::HashMap;

use semcommute_core::{inverse_catalog, InverseOperation};
use semcommute_logic::ElemId;
use semcommute_spec::{AbstractState, InterfaceId};

use crate::log::LogEntry;
use crate::structure::AnyStructure;

/// Inverse-operation-based rollback for one interface.
#[derive(Debug, Clone)]
pub struct InverseRollback {
    inverses: HashMap<String, InverseOperation>,
}

impl InverseRollback {
    /// Builds the rollback helper from the verified inverse catalog
    /// (Table 5.10).
    pub fn new(interface: InterfaceId) -> InverseRollback {
        let inverses = inverse_catalog()
            .into_iter()
            .filter(|inv| inv.interface == interface)
            .map(|inv| (inv.op.clone(), inv))
            .collect();
        InverseRollback { inverses }
    }

    /// The inverse for an operation, if the operation updates the state.
    pub fn inverse_of(&self, op: &str) -> Option<&InverseOperation> {
        self.inverses.get(op)
    }

    /// Undoes the given log entries (a single transaction's operations),
    /// newest first, by applying inverse operations to the structure.
    ///
    /// # Errors
    ///
    /// Returns a message if an inverse call is rejected by the structure —
    /// which cannot happen for entries produced by the speculative runtime
    /// (the inverse preconditions are verified).
    pub fn undo(&self, structure: &mut AnyStructure, entries: &[LogEntry]) -> Result<(), String> {
        for entry in entries.iter().rev() {
            let Some(inverse) = self.inverses.get(&entry.op) else {
                // Observer operations change nothing and need no undo.
                continue;
            };
            let Some((op, args)) = inverse.concrete_call(&entry.args, entry.result.as_ref()) else {
                // Nothing to undo (e.g. `add` returned false).
                continue;
            };
            structure
                .apply(&op, &args)
                .map_err(|e| format!("rolling back `{}` with `{op}`: {e}", entry.op))?;
        }
        Ok(())
    }
}

/// Snapshot-based rollback: save the abstract state, restore it on demand.
#[derive(Debug, Clone)]
pub struct SnapshotRollback {
    snapshot: AbstractState,
    name: &'static str,
}

impl SnapshotRollback {
    /// Captures the abstract state of a structure.
    pub fn capture(structure: &AnyStructure) -> SnapshotRollback {
        SnapshotRollback {
            snapshot: structure.abstract_state(),
            name: structure.name(),
        }
    }

    /// The captured abstract state.
    pub fn snapshot(&self) -> &AbstractState {
        &self.snapshot
    }

    /// Restores the captured state by rebuilding the structure from scratch.
    ///
    /// # Errors
    ///
    /// Returns a message if the captured state cannot be replayed (see
    /// [`rebuild`]) — impossible for snapshots captured from a live
    /// structure, whose abstract state is well-formed by construction.
    pub fn restore(&self) -> Result<AnyStructure, String> {
        rebuild(self.name, &self.snapshot)
    }
}

/// Rebuilds a concrete structure of the given kind holding the given abstract
/// state.
///
/// # Errors
///
/// Returns a message if `name` is not a known structure or the state cannot
/// be replayed onto a fresh instance (e.g. a set containing `null`, which no
/// `add` call can produce). States captured from a live structure are
/// well-formed by construction; a malformed one indicates a corrupted or
/// hand-crafted log, which must surface as an `Evaluation`-class error for
/// the caller to handle — not a panic.
pub fn rebuild(name: &str, state: &AbstractState) -> Result<AnyStructure, String> {
    use semcommute_logic::Value;
    let mut structure = AnyStructure::by_name(name)
        .ok_or_else(|| format!("rebuild: unknown structure name `{name}`"))?;
    let mut replay = |op: &str, args: &[Value]| {
        structure
            .apply(op, args)
            .map(|_| ())
            .map_err(|e| format!("rebuild of `{name}`: replaying `{op}` failed: {e}"))
    };
    match state {
        AbstractState::Counter(c) => {
            replay("increase", &[Value::Int(*c)])?;
        }
        AbstractState::Set(elems) => {
            for &e in elems {
                replay("add", &[Value::Elem(e)])?;
            }
        }
        AbstractState::Map(pairs) => {
            for (&k, &v) in pairs {
                replay("put", &[Value::Elem(k), Value::Elem(v)])?;
            }
        }
        AbstractState::List(items) => {
            for (i, &e) in items.iter().enumerate() {
                replay("addAt", &[Value::Int(i as i64), Value::Elem(e)])?;
            }
        }
    }
    Ok(structure)
}

/// Convenience used by tests and benchmarks: a set-shaped abstract state.
pub fn set_state(ids: impl IntoIterator<Item = u32>) -> AbstractState {
    AbstractState::Set(ids.into_iter().map(ElemId).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use semcommute_logic::Value;

    fn logged(op: &str, args: Vec<Value>, result: Option<Value>) -> LogEntry {
        LogEntry {
            txn: 1,
            op: op.to_string(),
            args,
            result,
            // Inverses read arguments and results only — never the pre-state.
            pre_state: None,
        }
    }

    #[test]
    fn inverse_rollback_restores_the_abstract_state() {
        let mut s = AnyStructure::by_name("HashSet").unwrap();
        s.apply("add", &[Value::elem(1)]).unwrap();
        let before = s.abstract_state();

        // Execute two operations and log them.
        let r1 = s.apply("add", &[Value::elem(2)]).unwrap();
        let r2 = s.apply("remove", &[Value::elem(1)]).unwrap();
        let entries = vec![
            logged("add", vec![Value::elem(2)], r1),
            logged("remove", vec![Value::elem(1)], r2),
        ];

        let rollback = InverseRollback::new(InterfaceId::Set);
        rollback.undo(&mut s, &entries).unwrap();
        assert_eq!(s.abstract_state(), before);
        assert!(s.check_invariants().is_ok());
    }

    #[test]
    fn inverse_rollback_skips_noop_updates_and_observers() {
        let mut s = AnyStructure::by_name("ListSet").unwrap();
        s.apply("add", &[Value::elem(4)]).unwrap();
        let before = s.abstract_state();
        // Adding an element that is already present returns false: nothing to
        // undo. A contains observation also needs no undo.
        let r = s.apply("add", &[Value::elem(4)]).unwrap();
        let rc = s.apply("contains", &[Value::elem(4)]).unwrap();
        let entries = vec![
            logged("add", vec![Value::elem(4)], r),
            logged("contains", vec![Value::elem(4)], rc),
        ];
        InverseRollback::new(InterfaceId::Set)
            .undo(&mut s, &entries)
            .unwrap();
        assert_eq!(s.abstract_state(), before);
    }

    #[test]
    fn inverse_rollback_handles_maps_and_lists() {
        // Map: put over an existing key must restore the old value.
        let mut m = AnyStructure::by_name("HashTable").unwrap();
        m.apply("put", &[Value::elem(1), Value::elem(10)]).unwrap();
        let before = m.abstract_state();
        let r = m.apply("put", &[Value::elem(1), Value::elem(20)]).unwrap();
        InverseRollback::new(InterfaceId::Map)
            .undo(
                &mut m,
                &[logged("put", vec![Value::elem(1), Value::elem(20)], r)],
            )
            .unwrap();
        assert_eq!(m.abstract_state(), before);

        // List: removeAt must be undone by re-inserting the removed element.
        let mut l = AnyStructure::by_name("ArrayList").unwrap();
        for (i, e) in [5u32, 6, 7].iter().enumerate() {
            l.apply("addAt", &[Value::Int(i as i64), Value::elem(*e)])
                .unwrap();
        }
        let before = l.abstract_state();
        let r = l.apply("removeAt", &[Value::Int(1)]).unwrap();
        InverseRollback::new(InterfaceId::List)
            .undo(&mut l, &[logged("removeAt", vec![Value::Int(1)], r)])
            .unwrap();
        assert_eq!(l.abstract_state(), before);
    }

    #[test]
    fn snapshot_rollback_round_trips_every_structure() {
        for name in [
            "HashSet",
            "ListSet",
            "HashTable",
            "AssociationList",
            "ArrayList",
            "Accumulator",
        ] {
            let mut s = AnyStructure::by_name(name).unwrap();
            match s.interface() {
                InterfaceId::Set => {
                    s.apply("add", &[Value::elem(1)]).unwrap();
                    s.apply("add", &[Value::elem(2)]).unwrap();
                }
                InterfaceId::Map => {
                    s.apply("put", &[Value::elem(1), Value::elem(9)]).unwrap();
                }
                InterfaceId::List => {
                    s.apply("addAt", &[Value::Int(0), Value::elem(3)]).unwrap();
                }
                InterfaceId::Accumulator => {
                    s.apply("increase", &[Value::Int(7)]).unwrap();
                }
            }
            let snapshot = SnapshotRollback::capture(&s);
            // Mutate further, then restore.
            match s.interface() {
                InterfaceId::Set => {
                    s.apply("remove", &[Value::elem(1)]).unwrap();
                }
                InterfaceId::Map => {
                    s.apply("remove", &[Value::elem(1)]).unwrap();
                }
                InterfaceId::List => {
                    s.apply("removeAt", &[Value::Int(0)]).unwrap();
                }
                InterfaceId::Accumulator => {
                    s.apply("increase", &[Value::Int(1)]).unwrap();
                }
            }
            let restored = snapshot.restore().unwrap();
            assert_eq!(restored.abstract_state(), *snapshot.snapshot(), "{name}");
            assert!(restored.check_invariants().is_ok());
        }
    }

    #[test]
    fn rebuild_surfaces_malformed_states_as_errors() {
        use semcommute_logic::NULL_ELEM;

        // An unknown structure name is an error, not a panic.
        let err = rebuild("NoSuchStructure", &AbstractState::Counter(0)).unwrap_err();
        assert!(err.contains("unknown structure name"), "{err}");

        // A set containing `null` cannot be produced by any `add` call — a
        // log claiming it is malformed. Replay reports which op rejected it.
        let bad = AbstractState::Set([NULL_ELEM].into_iter().collect());
        let err = rebuild("HashSet", &bad).unwrap_err();
        assert!(err.contains("replaying `add` failed"), "{err}");

        // Same for a map binding `null`.
        let bad = AbstractState::Map([(NULL_ELEM, ElemId(1))].into_iter().collect());
        let err = rebuild("HashTable", &bad).unwrap_err();
        assert!(err.contains("replaying `put` failed"), "{err}");

        // A well-formed state still round-trips.
        let good = set_state([1, 2, 3]);
        let rebuilt = rebuild("HashSet", &good).unwrap();
        assert_eq!(rebuilt.abstract_state(), good);
    }

    #[test]
    fn inverse_of_exists_only_for_updates() {
        let r = InverseRollback::new(InterfaceId::Set);
        assert!(r.inverse_of("add").is_some());
        assert!(r.inverse_of("remove").is_some());
        assert!(r.inverse_of("contains").is_none());
        assert!(r.inverse_of("size").is_none());
    }
}
