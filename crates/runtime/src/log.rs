//! Operation logs: what a transaction has executed so far.

use semcommute_logic::Value;

/// One executed operation, as recorded by the speculative runtime.
///
/// The entry carries everything the verified artifacts need later:
///
/// * the *between* commutativity conditions may reference the operation's
///   arguments, its recorded return value, and (for a handful of pairs) the
///   abstract state before it executed, and
/// * the inverse operation may need the arguments and the return value to
///   undo the effect (Table 5.10) — inverses never read the pre-state.
///
/// `pre_state` is a **projection**: it is populated only when some between
/// condition whose *first* operation is `op` actually reads the initial
/// state `s1` (see
/// [`CommutativityGatekeeper::requires_pre_state`](crate::CommutativityGatekeeper::requires_pre_state)
/// — under the compiled admission backend "reads" is derived from the
/// compiled program's actual `s1` slot reads, under the interpreter from a
/// syntactic free-variable scan; the two agree across the catalog).
/// Most recorded-variant between conditions test the recorded return value
/// `r1` instead — that is the point of recording it — so most entries carry
/// `None` here and cost nothing to record. When the state *is* needed it is
/// captured as a persistent [`Value`] handle (`PSet`/`PMap`/`PSeq` payloads),
/// which clones in O(1) from the runtime's incrementally-maintained mirror:
/// recording an entry never walks the structure.
#[derive(Debug, Clone, PartialEq)]
pub struct LogEntry {
    /// The transaction that executed the operation.
    pub txn: u64,
    /// The operation name.
    pub op: String,
    /// The arguments.
    pub args: Vec<Value>,
    /// The recorded return value (`None` for void operations).
    pub result: Option<Value>,
    /// The abstract state immediately before the operation executed, as a
    /// logical value — recorded only for operations whose between conditions
    /// read `s1` (`None` otherwise).
    pub pre_state: Option<Value>,
}

/// An append-ordered log of operations tagged with their transactions.
///
/// Since the runtime moved to per-transaction logs published through the
/// sharded [`InFlightIndex`](crate::index::InFlightIndex), this type is no
/// longer the runtime's shared hot-path structure; it remains the convenient
/// flat shape for unit tests, benchmarks, and
/// [`CommutativityGatekeeper::admit`](crate::CommutativityGatekeeper::admit),
/// which all want "a few transactions' entries in execution order" without
/// standing up a whole runtime.
#[derive(Debug, Clone, Default)]
pub struct OperationLog {
    entries: Vec<LogEntry>,
}

impl OperationLog {
    /// Creates an empty log.
    pub fn new() -> OperationLog {
        OperationLog::default()
    }

    /// Appends an entry.
    pub fn record(&mut self, entry: LogEntry) {
        self.entries.push(entry);
    }

    /// All entries, oldest first.
    pub fn entries(&self) -> &[LogEntry] {
        &self.entries
    }

    /// Entries executed by transactions other than `txn`, oldest first.
    pub fn entries_of_others(&self, txn: u64) -> impl Iterator<Item = &LogEntry> {
        self.entries.iter().filter(move |e| e.txn != txn)
    }

    /// Entries executed by `txn`, oldest first.
    pub fn entries_of(&self, txn: u64) -> impl Iterator<Item = &LogEntry> {
        self.entries.iter().filter(move |e| e.txn == txn)
    }

    /// Removes (and returns) all entries of `txn` — used both on commit (the
    /// entries no longer constrain others) and on abort (the entries must be
    /// undone, newest first).
    pub fn remove_transaction(&mut self, txn: u64) -> Vec<LogEntry> {
        let mut removed = Vec::new();
        self.entries.retain(|e| {
            if e.txn == txn {
                removed.push(e.clone());
                false
            } else {
                true
            }
        });
        removed
    }

    /// The number of logged operations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(txn: u64, op: &str) -> LogEntry {
        LogEntry {
            txn,
            op: op.to_string(),
            args: vec![Value::elem(1)],
            result: Some(Value::Bool(true)),
            pre_state: None,
        }
    }

    #[test]
    fn record_and_filter_by_transaction() {
        let mut log = OperationLog::new();
        assert!(log.is_empty());
        log.record(entry(1, "add"));
        log.record(entry(2, "remove"));
        log.record(entry(1, "contains"));
        assert_eq!(log.len(), 3);
        assert_eq!(log.entries_of(1).count(), 2);
        assert_eq!(log.entries_of_others(1).count(), 1);
        assert_eq!(log.entries_of_others(1).next().unwrap().op, "remove");
    }

    #[test]
    fn remove_transaction_extracts_in_order() {
        let mut log = OperationLog::new();
        log.record(entry(1, "add"));
        log.record(entry(2, "remove"));
        log.record(entry(1, "size"));
        let removed = log.remove_transaction(1);
        assert_eq!(removed.len(), 2);
        assert_eq!(removed[0].op, "add");
        assert_eq!(removed[1].op, "size");
        assert_eq!(log.len(), 1);
        assert_eq!(log.entries()[0].txn, 2);
    }
}
