//! A uniform handle over the six concrete data structures.

use std::fmt;

use semcommute_logic::{ElemId, Value, NULL_ELEM};
use semcommute_spec::{AbstractState, InterfaceId};
use semcommute_structures::{
    Abstraction, Accumulator, ArrayList, AssociationList, HashSet, HashTable, ListInterface,
    ListSet, MapInterface, SetInterface,
};

/// One of the six concrete data structures, together with name-based
/// operation dispatch.
///
/// The speculative runtime manipulates data structures through this handle:
/// operations are invoked by interface name (`"add"`, `"put"`, `"removeAt"`,
/// …) with logical [`Value`] arguments, return their result as a logical
/// value (using `null` for absent map values), and the abstraction function
/// is available for the commutativity gatekeeper.
#[derive(Debug, Clone)]
pub enum AnyStructure {
    /// An [`Accumulator`].
    Accumulator(Accumulator),
    /// A [`ListSet`].
    ListSet(ListSet),
    /// A [`HashSet`].
    HashSet(HashSet),
    /// An [`AssociationList`].
    AssociationList(AssociationList),
    /// A [`HashTable`].
    HashTable(HashTable),
    /// An [`ArrayList`].
    ArrayList(ArrayList),
}

/// An error dispatching an operation to a concrete structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DispatchError {
    /// The operation is not part of the structure's interface.
    UnknownOperation(String),
    /// An argument had the wrong shape (e.g. an integer where an element was
    /// expected, or a null element).
    BadArgument {
        /// The operation being invoked.
        op: String,
        /// A description of the problem.
        reason: String,
    },
}

impl fmt::Display for DispatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DispatchError::UnknownOperation(op) => write!(f, "unknown operation `{op}`"),
            DispatchError::BadArgument { op, reason } => {
                write!(f, "bad argument to `{op}`: {reason}")
            }
        }
    }
}

impl std::error::Error for DispatchError {}

fn elem_arg(op: &str, args: &[Value], index: usize) -> Result<ElemId, DispatchError> {
    match args.get(index) {
        Some(Value::Elem(e)) if !e.is_null() => Ok(*e),
        Some(Value::Elem(_)) => Err(DispatchError::BadArgument {
            op: op.to_string(),
            reason: format!("argument {index} must not be null"),
        }),
        other => Err(DispatchError::BadArgument {
            op: op.to_string(),
            reason: format!("argument {index} must be an element, got {other:?}"),
        }),
    }
}

fn int_arg(op: &str, args: &[Value], index: usize) -> Result<i64, DispatchError> {
    match args.get(index) {
        Some(Value::Int(i)) => Ok(*i),
        other => Err(DispatchError::BadArgument {
            op: op.to_string(),
            reason: format!("argument {index} must be an integer, got {other:?}"),
        }),
    }
}

fn index_arg(
    op: &str,
    args: &[Value],
    index: usize,
    len: usize,
    inclusive: bool,
) -> Result<usize, DispatchError> {
    let raw = int_arg(op, args, index)?;
    let bound = if inclusive {
        len as i64
    } else {
        len as i64 - 1
    };
    if raw < 0 || raw > bound {
        return Err(DispatchError::BadArgument {
            op: op.to_string(),
            reason: format!("index {raw} out of range (size {len})"),
        });
    }
    Ok(raw as usize)
}

fn opt_elem(value: Option<ElemId>) -> Option<Value> {
    Some(Value::Elem(value.unwrap_or(NULL_ELEM)))
}

impl AnyStructure {
    /// Creates an empty structure of the given concrete kind, by name.
    /// Accepted names: `Accumulator`, `ListSet`, `HashSet`, `AssociationList`,
    /// `HashTable`, `ArrayList`.
    pub fn by_name(name: &str) -> Option<AnyStructure> {
        Some(match name {
            "Accumulator" => AnyStructure::Accumulator(Accumulator::new()),
            "ListSet" => AnyStructure::ListSet(ListSet::new()),
            "HashSet" => AnyStructure::HashSet(HashSet::new()),
            "AssociationList" => AnyStructure::AssociationList(AssociationList::new()),
            "HashTable" => AnyStructure::HashTable(HashTable::new()),
            "ArrayList" => AnyStructure::ArrayList(ArrayList::new()),
            _ => return None,
        })
    }

    /// The interface this structure implements.
    pub fn interface(&self) -> InterfaceId {
        match self {
            AnyStructure::Accumulator(_) => InterfaceId::Accumulator,
            AnyStructure::ListSet(_) | AnyStructure::HashSet(_) => InterfaceId::Set,
            AnyStructure::AssociationList(_) | AnyStructure::HashTable(_) => InterfaceId::Map,
            AnyStructure::ArrayList(_) => InterfaceId::List,
        }
    }

    /// The concrete structure's name.
    pub fn name(&self) -> &'static str {
        match self {
            AnyStructure::Accumulator(_) => "Accumulator",
            AnyStructure::ListSet(_) => "ListSet",
            AnyStructure::HashSet(_) => "HashSet",
            AnyStructure::AssociationList(_) => "AssociationList",
            AnyStructure::HashTable(_) => "HashTable",
            AnyStructure::ArrayList(_) => "ArrayList",
        }
    }

    /// The abstraction function.
    pub fn abstract_state(&self) -> AbstractState {
        match self {
            AnyStructure::Accumulator(s) => s.abstract_state(),
            AnyStructure::ListSet(s) => s.abstract_state(),
            AnyStructure::HashSet(s) => s.abstract_state(),
            AnyStructure::AssociationList(s) => s.abstract_state(),
            AnyStructure::HashTable(s) => s.abstract_state(),
            AnyStructure::ArrayList(s) => s.abstract_state(),
        }
    }

    /// Checks the representation invariant of the underlying structure.
    ///
    /// # Errors
    ///
    /// Returns the first violation found, as a human-readable message.
    pub fn check_invariants(&self) -> Result<(), String> {
        match self {
            AnyStructure::Accumulator(s) => s.check_invariants(),
            AnyStructure::ListSet(s) => s.check_invariants(),
            AnyStructure::HashSet(s) => s.check_invariants(),
            AnyStructure::AssociationList(s) => s.check_invariants(),
            AnyStructure::HashTable(s) => s.check_invariants(),
            AnyStructure::ArrayList(s) => s.check_invariants(),
        }
    }

    /// Invokes an interface operation by name.
    ///
    /// Operations whose precondition is violated (out-of-range index, null
    /// argument) return a [`DispatchError`] rather than panicking, so the
    /// speculative runtime can treat them as application errors.
    ///
    /// # Errors
    ///
    /// Returns [`DispatchError`] for unknown operations or ill-formed
    /// arguments.
    pub fn apply(&mut self, op: &str, args: &[Value]) -> Result<Option<Value>, DispatchError> {
        let unknown = || DispatchError::UnknownOperation(op.to_string());
        match self {
            AnyStructure::Accumulator(s) => match op {
                "increase" => {
                    s.increase(int_arg(op, args, 0)?);
                    Ok(None)
                }
                "read" => Ok(Some(Value::Int(s.read()))),
                _ => Err(unknown()),
            },
            AnyStructure::ListSet(s) => apply_set(s, op, args),
            AnyStructure::HashSet(s) => apply_set(s, op, args),
            AnyStructure::AssociationList(s) => apply_map(s, op, args),
            AnyStructure::HashTable(s) => apply_map(s, op, args),
            AnyStructure::ArrayList(s) => apply_list(s, op, args),
        }
    }
}

fn apply_set<S: SetInterface>(
    s: &mut S,
    op: &str,
    args: &[Value],
) -> Result<Option<Value>, DispatchError> {
    match op {
        "add" => Ok(Some(Value::Bool(s.add(elem_arg(op, args, 0)?)))),
        "contains" => Ok(Some(Value::Bool(s.contains(elem_arg(op, args, 0)?)))),
        "remove" => Ok(Some(Value::Bool(s.remove(elem_arg(op, args, 0)?)))),
        "size" => Ok(Some(Value::Int(s.size() as i64))),
        _ => Err(DispatchError::UnknownOperation(op.to_string())),
    }
}

fn apply_map<M: MapInterface>(
    m: &mut M,
    op: &str,
    args: &[Value],
) -> Result<Option<Value>, DispatchError> {
    match op {
        "containsKey" => Ok(Some(Value::Bool(m.contains_key(elem_arg(op, args, 0)?)))),
        "get" => Ok(opt_elem(m.get(elem_arg(op, args, 0)?))),
        "put" => Ok(opt_elem(
            m.put(elem_arg(op, args, 0)?, elem_arg(op, args, 1)?),
        )),
        "remove" => Ok(opt_elem(m.remove(elem_arg(op, args, 0)?))),
        "size" => Ok(Some(Value::Int(m.size() as i64))),
        _ => Err(DispatchError::UnknownOperation(op.to_string())),
    }
}

fn apply_list<L: ListInterface>(
    l: &mut L,
    op: &str,
    args: &[Value],
) -> Result<Option<Value>, DispatchError> {
    let len = l.size();
    match op {
        "addAt" => {
            let i = index_arg(op, args, 0, len, true)?;
            l.add_at(i, elem_arg(op, args, 1)?);
            Ok(None)
        }
        "get" => {
            let i = index_arg(op, args, 0, len, false)?;
            Ok(Some(Value::Elem(l.get(i))))
        }
        "indexOf" => Ok(Some(Value::Int(
            l.index_of(elem_arg(op, args, 0)?).map_or(-1, |i| i as i64),
        ))),
        "lastIndexOf" => Ok(Some(Value::Int(
            l.last_index_of(elem_arg(op, args, 0)?)
                .map_or(-1, |i| i as i64),
        ))),
        "removeAt" => {
            let i = index_arg(op, args, 0, len, false)?;
            Ok(Some(Value::Elem(l.remove_at(i))))
        }
        "set" => {
            let i = index_arg(op, args, 0, len, false)?;
            Ok(Some(Value::Elem(l.set(i, elem_arg(op, args, 1)?))))
        }
        "size" => Ok(Some(Value::Int(l.size() as i64))),
        _ => Err(DispatchError::UnknownOperation(op.to_string())),
    }
}

/// A concrete structure paired with an incrementally-maintained mirror of
/// its abstract state.
///
/// The speculative runtime's gatekeeper evaluates between conditions against
/// the abstract state a logged operation saw. Recomputing that state through
/// the abstraction function ([`AnyStructure::abstract_state`]) walks the
/// whole structure — O(size) per logged operation, the dominant cost of the
/// seed runtime. `TrackedStructure` instead keeps the abstract state as a
/// persistent logical [`Value`] (`PSet`/`PMap`/`PSeq` payloads) and updates
/// it in step with every dispatched operation: the update is O(log size),
/// and taking a snapshot for a log entry is an O(1) handle clone
/// ([`state_value`](TrackedStructure::state_value)).
///
/// The mirror is definitionally equal to `inner().abstract_state().to_value()`
/// after every successful [`apply`](TrackedStructure::apply) (failed
/// dispatches change neither the structure nor the mirror); the runtime's
/// differential tests pin this.
#[derive(Debug, Clone)]
pub struct TrackedStructure {
    inner: AnyStructure,
    mirror: Value,
}

impl TrackedStructure {
    /// Wraps a structure, computing the initial mirror through the
    /// abstraction function (the only full walk this type ever performs).
    pub fn new(inner: AnyStructure) -> TrackedStructure {
        let mirror = inner.abstract_state().to_value();
        TrackedStructure { inner, mirror }
    }

    /// The wrapped concrete structure.
    pub fn inner(&self) -> &AnyStructure {
        &self.inner
    }

    /// The wrapped structure's name (e.g. `"HashSet"`), for diagnostics that
    /// must not pay a lock acquisition — retry reports capture it at runtime
    /// construction.
    pub fn name(&self) -> &'static str {
        self.inner.name()
    }

    /// The mirrored abstract state as a logical value. Cloning the returned
    /// reference is O(1) — the collection payloads are persistent handles.
    pub fn state_value(&self) -> &Value {
        &self.mirror
    }

    /// Invokes an interface operation by name, keeping the mirror in step.
    ///
    /// # Errors
    ///
    /// Returns [`DispatchError`] for unknown operations or ill-formed
    /// arguments; the structure and the mirror are unchanged in that case.
    pub fn apply(&mut self, op: &str, args: &[Value]) -> Result<Option<Value>, DispatchError> {
        let result = self.inner.apply(op, args)?;
        self.track(op, args);
        Ok(result)
    }

    /// Mirrors the effect of a *successfully dispatched* operation. The
    /// arguments were validated by the dispatch, so the extractions below
    /// cannot fail.
    fn track(&mut self, op: &str, args: &[Value]) {
        fn elem(args: &[Value], index: usize) -> ElemId {
            match &args[index] {
                Value::Elem(e) => *e,
                other => unreachable!("dispatch validated argument {index}, got {other:?}"),
            }
        }
        fn int(args: &[Value], index: usize) -> i64 {
            match &args[index] {
                Value::Int(i) => *i,
                other => unreachable!("dispatch validated argument {index}, got {other:?}"),
            }
        }
        match &mut self.mirror {
            Value::Int(counter) => {
                if op == "increase" {
                    *counter += int(args, 0);
                }
            }
            Value::Set(set) => match op {
                "add" => {
                    set.insert(elem(args, 0));
                }
                "remove" => {
                    set.remove(&elem(args, 0));
                }
                _ => {}
            },
            Value::Map(map) => match op {
                "put" => {
                    map.insert(elem(args, 0), elem(args, 1));
                }
                "remove" => {
                    map.remove(&elem(args, 0));
                }
                _ => {}
            },
            Value::Seq(seq) => match op {
                "addAt" => seq.insert(int(args, 0) as usize, elem(args, 1)),
                "removeAt" => {
                    seq.remove(int(args, 0) as usize);
                }
                "set" => seq.set(int(args, 0) as usize, elem(args, 1)),
                _ => {}
            },
            other => unreachable!("no structure mirrors to {other:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semcommute_spec::apply_op;

    #[test]
    fn by_name_covers_all_structures() {
        for name in [
            "Accumulator",
            "ListSet",
            "HashSet",
            "AssociationList",
            "HashTable",
            "ArrayList",
        ] {
            let s = AnyStructure::by_name(name).unwrap();
            assert_eq!(s.name(), name);
            assert!(s.check_invariants().is_ok());
        }
        assert!(AnyStructure::by_name("TreeSet").is_none());
    }

    #[test]
    #[allow(clippy::type_complexity)]
    fn dispatch_matches_abstract_semantics() {
        // Drive each structure through a short trace and check the return
        // values and abstraction against the executable specification.
        let traces: Vec<(&str, Vec<(&str, Vec<Value>)>)> = vec![
            (
                "HashSet",
                vec![
                    ("add", vec![Value::elem(1)]),
                    ("add", vec![Value::elem(1)]),
                    ("contains", vec![Value::elem(1)]),
                    ("remove", vec![Value::elem(2)]),
                    ("size", vec![]),
                ],
            ),
            (
                "AssociationList",
                vec![
                    ("put", vec![Value::elem(1), Value::elem(10)]),
                    ("put", vec![Value::elem(1), Value::elem(11)]),
                    ("get", vec![Value::elem(2)]),
                    ("remove", vec![Value::elem(1)]),
                    ("size", vec![]),
                ],
            ),
            (
                "ArrayList",
                vec![
                    ("addAt", vec![Value::Int(0), Value::elem(5)]),
                    ("addAt", vec![Value::Int(1), Value::elem(6)]),
                    ("set", vec![Value::Int(0), Value::elem(7)]),
                    ("indexOf", vec![Value::elem(6)]),
                    ("removeAt", vec![Value::Int(0)]),
                ],
            ),
            (
                "Accumulator",
                vec![
                    ("increase", vec![Value::Int(5)]),
                    ("increase", vec![Value::Int(-2)]),
                    ("read", vec![]),
                ],
            ),
        ];
        for (name, trace) in traces {
            let mut concrete = AnyStructure::by_name(name).unwrap();
            let iface = semcommute_spec::interface_by_id(concrete.interface());
            let mut abstract_state = concrete.abstract_state();
            for (op, args) in trace {
                let got = concrete.apply(op, &args).unwrap();
                let (next, expected) = apply_op(&iface, &abstract_state, op, &args).unwrap();
                assert_eq!(got, expected, "{name}.{op} return value");
                abstract_state = next;
                assert_eq!(
                    concrete.abstract_state(),
                    abstract_state,
                    "{name}.{op} state"
                );
                assert!(concrete.check_invariants().is_ok());
            }
        }
    }

    #[test]
    fn bad_arguments_are_reported_not_panicking() {
        let mut l = AnyStructure::by_name("ArrayList").unwrap();
        assert!(matches!(
            l.apply("get", &[Value::Int(0)]),
            Err(DispatchError::BadArgument { .. })
        ));
        assert!(matches!(
            l.apply("addAt", &[Value::Int(3), Value::elem(1)]),
            Err(DispatchError::BadArgument { .. })
        ));
        let mut s = AnyStructure::by_name("HashSet").unwrap();
        assert!(matches!(
            s.apply("add", &[Value::null()]),
            Err(DispatchError::BadArgument { .. })
        ));
        assert!(matches!(
            s.apply("push", &[]),
            Err(DispatchError::UnknownOperation(_))
        ));
        let err = s.apply("add", &[Value::Int(3)]).unwrap_err();
        assert!(err.to_string().contains("must be an element"));
    }

    #[test]
    fn out_of_range_list_indices_are_op_errors_not_panics() {
        // `ArrayList`'s `ListInterface` methods `assert!`/`expect` on their
        // bounds; this pins that no index arriving through the op surface
        // can reach those panics — `index_arg` rejects it first.
        let mut l = AnyStructure::by_name("ArrayList").unwrap();
        for (i, e) in [4u32, 5, 6].iter().enumerate() {
            l.apply("addAt", &[Value::Int(i as i64), Value::elem(*e)])
                .unwrap();
        }
        let before = l.abstract_state();
        // First index past the valid range for each op (`addAt` admits
        // `len` itself), plus a negative index for each.
        let attempts: &[(&str, Vec<Value>)] = &[
            ("get", vec![Value::Int(3)]),
            ("get", vec![Value::Int(-1)]),
            ("removeAt", vec![Value::Int(3)]),
            ("removeAt", vec![Value::Int(-2)]),
            ("set", vec![Value::Int(3), Value::elem(9)]),
            ("set", vec![Value::Int(-1), Value::elem(9)]),
            ("addAt", vec![Value::Int(4), Value::elem(9)]),
            ("addAt", vec![Value::Int(-1), Value::elem(9)]),
            ("get", vec![Value::Int(i64::MAX)]),
            ("addAt", vec![Value::Int(i64::MIN), Value::elem(9)]),
        ];
        for (op, args) in attempts {
            let err = l.apply(op, args).unwrap_err();
            assert!(
                matches!(&err, DispatchError::BadArgument { .. }),
                "{op}{args:?}: {err}"
            );
            assert!(err.to_string().contains("out of range"), "{op}: {err}");
        }
        // Rejected dispatches leave the structure untouched.
        assert_eq!(l.abstract_state(), before);
        assert!(l.check_invariants().is_ok());
    }

    #[test]
    fn tracked_mirror_stays_equal_to_the_abstraction_function() {
        // Drive every structure through a mixed trace (including no-op
        // updates and failing dispatches) and check the mirror against the
        // ground-truth abstraction after every step.
        type Trace<'a> = (&'a str, &'a [(&'a str, &'a [Value])]);
        let traces: &[Trace] = &[
            (
                "HashSet",
                &[
                    ("add", &[Value::elem(1)]),
                    ("add", &[Value::elem(1)]),
                    ("remove", &[Value::elem(2)]),
                    ("remove", &[Value::elem(1)]),
                    ("contains", &[Value::elem(1)]),
                    ("add", &[Value::null()]), // dispatch error: no change
                ],
            ),
            (
                "HashTable",
                &[
                    ("put", &[Value::elem(1), Value::elem(10)]),
                    ("put", &[Value::elem(1), Value::elem(11)]),
                    ("remove", &[Value::elem(2)]),
                    ("remove", &[Value::elem(1)]),
                    ("size", &[]),
                ],
            ),
            (
                "ArrayList",
                &[
                    ("addAt", &[Value::Int(0), Value::elem(5)]),
                    ("addAt", &[Value::Int(1), Value::elem(6)]),
                    ("set", &[Value::Int(0), Value::elem(7)]),
                    ("removeAt", &[Value::Int(1)]),
                    ("removeAt", &[Value::Int(5)]), // dispatch error: no change
                    ("get", &[Value::Int(0)]),
                ],
            ),
            (
                "Accumulator",
                &[
                    ("increase", &[Value::Int(5)]),
                    ("increase", &[Value::Int(-9)]),
                    ("read", &[]),
                ],
            ),
        ];
        for (name, trace) in traces {
            let mut tracked = TrackedStructure::new(AnyStructure::by_name(name).unwrap());
            for (op, args) in *trace {
                let _ = tracked.apply(op, args);
                assert_eq!(
                    *tracked.state_value(),
                    tracked.inner().abstract_state().to_value(),
                    "{name}.{op} mirror drifted"
                );
            }
        }
    }
}
