//! Speculative-execution runtime built on the verified commutativity
//! conditions and inverse operations.
//!
//! Chapter 1 of the paper motivates the verified artifacts with optimistic
//! parallel systems (Galois-style irregular parallelism, transaction
//! monitors): such systems
//!
//! 1. dynamically detect whether a speculatively executed operation
//!    *semantically commutes* with the operations other in-flight
//!    transactions have already executed (using **between** commutativity
//!    conditions), and
//! 2. roll back the operations of an aborted transaction with **inverse
//!    operations**, which restore the abstract state without saving and
//!    restoring the whole structure.
//!
//! This crate implements that client system:
//!
//! * [`AnyStructure`] — a uniform handle over the six concrete data
//!   structures (dispatching operation names to the trait implementations and
//!   exposing the abstraction function), wrapped by [`TrackedStructure`] to
//!   maintain an O(1)-snapshottable persistent mirror of the abstract state,
//! * [`LogEntry`] / [`index`] — executed operations (arguments, recorded
//!   return values, pre-state projections) published through the sharded
//!   in-flight index so admission never holds the structure lock,
//! * [`gatekeeper`] — the dynamic commutativity check driven by the verified
//!   between conditions,
//! * [`SpeculativeRuntime`] / [`Transaction`] — optimistic transactions with
//!   commutativity-based conflict detection and inverse-based rollback,
//! * [`CoarseLockRuntime`] — the baseline that serializes whole transactions
//!   with one lock,
//! * [`rollback`] — inverse-based vs. snapshot-based rollback, the comparison
//!   behind the paper's efficiency claim for inverse operations,
//! * [`contention`] — the adaptive fallback: sliding-window abort accounting
//!   that degrades a hot structure to a coarse mutex section (and probes its
//!   way back) when the abort rate says speculation is losing, plus bounded
//!   jittered retry backoff, and
//! * [`fault`] — deterministic fault injection ([`FaultPlan`]) so the
//!   degradation, poisoning, and backoff recovery paths are drivable on
//!   demand in tests and benchmarks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod contention;
pub mod executor;
pub mod fault;
pub mod gatekeeper;
pub mod index;
pub mod log;
pub mod rollback;
pub mod structure;

pub use baseline::CoarseLockRuntime;
pub use contention::{BackoffOptions, ContentionState, FallbackOptions, Mode, ModeGate};
pub use executor::{
    RetryReport, RuntimeOptions, RuntimeStats, SpeculativeRuntime, Transaction, TxnError,
};
pub use fault::{FaultKind, FaultPlan, FiredFault};
pub use gatekeeper::{AdmissionError, AdmitBackend, CommutativityGatekeeper, Conflict};
pub use index::InFlightIndex;
pub use log::{LogEntry, OperationLog};
pub use rollback::{InverseRollback, SnapshotRollback};
pub use structure::{AnyStructure, TrackedStructure};
