//! `AssociationList`: a map implemented as a singly-linked list of pairs.

use semcommute_logic::ElemId;
use semcommute_spec::AbstractState;

use crate::traits::{require_non_null, Abstraction, MapInterface};

/// A node holding one key/value pair.
#[derive(Debug, Clone)]
struct Node {
    key: ElemId,
    value: ElemId,
    next: Option<Box<Node>>,
}

/// A map from objects to objects implemented as a singly-linked list of
/// key/value pairs, as in the paper.
///
/// New mappings are inserted at the head, so concrete pair order depends on
/// the insertion order even though the abstract map does not — the map
/// analog of the motivating example for semantic commutativity.
///
/// # Example
///
/// ```
/// use semcommute_logic::ElemId;
/// use semcommute_structures::{AssociationList, MapInterface};
/// let mut m = AssociationList::new();
/// assert_eq!(m.put(ElemId(1), ElemId(10)), None);
/// assert_eq!(m.put(ElemId(1), ElemId(20)), Some(ElemId(10)));
/// assert_eq!(m.get(ElemId(1)), Some(ElemId(20)));
/// assert_eq!(m.remove(ElemId(1)), Some(ElemId(20)));
/// assert_eq!(m.size(), 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct AssociationList {
    head: Option<Box<Node>>,
    size: usize,
}

impl AssociationList {
    /// Creates an empty map.
    pub fn new() -> AssociationList {
        AssociationList {
            head: None,
            size: 0,
        }
    }

    /// Returns `true` if the map is empty.
    pub fn is_empty(&self) -> bool {
        self.size == 0
    }

    /// Iterates over `(key, value)` pairs in concrete list order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            node: self.head.as_deref(),
        }
    }
}

/// Iterator over the pairs of an [`AssociationList`] in concrete list order.
pub struct Iter<'a> {
    node: Option<&'a Node>,
}

impl Iterator for Iter<'_> {
    type Item = (ElemId, ElemId);

    fn next(&mut self) -> Option<(ElemId, ElemId)> {
        let node = self.node?;
        self.node = node.next.as_deref();
        Some((node.key, node.value))
    }
}

impl MapInterface for AssociationList {
    fn contains_key(&self, k: ElemId) -> bool {
        require_non_null(k, "key");
        self.iter().any(|(key, _)| key == k)
    }

    fn get(&self, k: ElemId) -> Option<ElemId> {
        require_non_null(k, "key");
        self.iter().find(|(key, _)| *key == k).map(|(_, v)| v)
    }

    fn put(&mut self, k: ElemId, v: ElemId) -> Option<ElemId> {
        require_non_null(k, "key");
        require_non_null(v, "value");
        // Update in place when the key already exists.
        let mut cursor = self.head.as_deref_mut();
        while let Some(node) = cursor {
            if node.key == k {
                let previous = node.value;
                node.value = v;
                return Some(previous);
            }
            cursor = node.next.as_deref_mut();
        }
        let node = Box::new(Node {
            key: k,
            value: v,
            next: self.head.take(),
        });
        self.head = Some(node);
        self.size += 1;
        None
    }

    fn remove(&mut self, k: ElemId) -> Option<ElemId> {
        require_non_null(k, "key");
        let mut cursor = &mut self.head;
        loop {
            match cursor {
                None => return None,
                Some(node) if node.key == k => {
                    let previous = node.value;
                    let next = node.next.take();
                    *cursor = next;
                    self.size -= 1;
                    return Some(previous);
                }
                Some(node) => cursor = &mut node.next,
            }
        }
    }

    fn size(&self) -> usize {
        self.size
    }
}

impl Abstraction for AssociationList {
    fn abstract_state(&self) -> AbstractState {
        AbstractState::Map(self.iter().collect())
    }

    fn check_invariants(&self) -> Result<(), String> {
        let mut seen = std::collections::BTreeSet::new();
        let mut count = 0usize;
        for (k, v) in self.iter() {
            if k.is_null() || v.is_null() {
                return Err("list node stores a null key or value".to_string());
            }
            if !seen.insert(k) {
                return Err(format!("duplicate key {k} in the list"));
            }
            count += 1;
        }
        if count != self.size {
            return Err(format!(
                "size field is {} but the list holds {count} pairs",
                self.size
            ));
        }
        Ok(())
    }
}

impl FromIterator<(ElemId, ElemId)> for AssociationList {
    fn from_iter<T: IntoIterator<Item = (ElemId, ElemId)>>(iter: T) -> Self {
        let mut m = AssociationList::new();
        for (k, v) in iter {
            m.put(k, v);
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_remove_contains_size() {
        let mut m = AssociationList::new();
        assert!(m.is_empty());
        assert_eq!(m.put(ElemId(1), ElemId(10)), None);
        assert_eq!(m.put(ElemId(2), ElemId(20)), None);
        assert_eq!(m.put(ElemId(1), ElemId(11)), Some(ElemId(10)));
        assert_eq!(m.size(), 2);
        assert_eq!(m.get(ElemId(1)), Some(ElemId(11)));
        assert_eq!(m.get(ElemId(3)), None);
        assert!(m.contains_key(ElemId(2)));
        assert!(!m.contains_key(ElemId(3)));
        assert_eq!(m.remove(ElemId(1)), Some(ElemId(11)));
        assert_eq!(m.remove(ElemId(1)), None);
        assert_eq!(m.size(), 1);
        assert!(m.check_invariants().is_ok());
    }

    #[test]
    fn different_insertion_orders_same_abstract_state() {
        let a: AssociationList = [(ElemId(1), ElemId(10)), (ElemId(2), ElemId(20))]
            .into_iter()
            .collect();
        let b: AssociationList = [(ElemId(2), ElemId(20)), (ElemId(1), ElemId(10))]
            .into_iter()
            .collect();
        assert_ne!(a.iter().collect::<Vec<_>>(), b.iter().collect::<Vec<_>>());
        assert_eq!(a.abstract_state(), b.abstract_state());
    }

    #[test]
    fn remove_interior_node_keeps_remaining_pairs() {
        let mut m: AssociationList = [
            (ElemId(1), ElemId(10)),
            (ElemId(2), ElemId(20)),
            (ElemId(3), ElemId(30)),
        ]
        .into_iter()
        .collect();
        assert_eq!(m.remove(ElemId(2)), Some(ElemId(20)));
        assert_eq!(m.get(ElemId(1)), Some(ElemId(10)));
        assert_eq!(m.get(ElemId(3)), Some(ElemId(30)));
        assert!(m.check_invariants().is_ok());
    }

    #[test]
    #[should_panic(expected = "value must not be null")]
    fn null_value_panics() {
        AssociationList::new().put(ElemId(1), semcommute_logic::NULL_ELEM);
    }

    #[test]
    #[should_panic(expected = "key must not be null")]
    fn null_key_panics() {
        AssociationList::new().get(semcommute_logic::NULL_ELEM);
    }
}
