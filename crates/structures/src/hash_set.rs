//! `HashSet`: a set implemented as a separately chained hash table.

use semcommute_logic::ElemId;
use semcommute_spec::AbstractState;

use crate::traits::{require_non_null, Abstraction, SetInterface};

/// A node in a bucket chain.
#[derive(Debug, Clone)]
struct Node {
    elem: ElemId,
    next: Option<Box<Node>>,
}

/// Multiplicative hash used to spread element identities across buckets.
fn bucket_of(elem: ElemId, buckets: usize) -> usize {
    debug_assert!(buckets.is_power_of_two());
    let h = elem.0.wrapping_mul(0x9E37_79B9);
    (h as usize) & (buckets - 1)
}

/// A set of objects implemented with a separately chained hash table, as in
/// Figure 2-1 of the paper: an array of linked lists plus a size field.
///
/// Like [`crate::ListSet`], two `HashSet`s holding the same elements can have
/// different concrete states (different table sizes, different chain orders)
/// while having the same abstract state; the commutativity conditions are
/// stated over the abstract set and therefore apply to both.
///
/// # Example
///
/// ```
/// use semcommute_logic::ElemId;
/// use semcommute_structures::{HashSet, SetInterface};
/// let mut s = HashSet::new();
/// for i in 1..=100 {
///     assert!(s.add(ElemId(i)));
/// }
/// assert_eq!(s.size(), 100);
/// assert!(s.remove(ElemId(40)));
/// assert!(!s.contains(ElemId(40)));
/// ```
#[derive(Debug, Clone)]
pub struct HashSet {
    table: Vec<Option<Box<Node>>>,
    size: usize,
}

const INITIAL_BUCKETS: usize = 8;
/// The chain length / bucket ratio above which the table grows.
const MAX_LOAD_NUMERATOR: usize = 3;
const MAX_LOAD_DENOMINATOR: usize = 4;

impl HashSet {
    /// Creates an empty set.
    pub fn new() -> HashSet {
        HashSet {
            table: (0..INITIAL_BUCKETS).map(|_| None).collect(),
            size: 0,
        }
    }

    /// Creates an empty set with at least `capacity` buckets.
    pub fn with_capacity(capacity: usize) -> HashSet {
        let buckets = capacity.next_power_of_two().max(INITIAL_BUCKETS);
        HashSet {
            table: (0..buckets).map(|_| None).collect(),
            size: 0,
        }
    }

    /// Returns `true` if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.size == 0
    }

    /// The number of buckets currently allocated (exposed for tests and the
    /// resize benchmarks).
    pub fn buckets(&self) -> usize {
        self.table.len()
    }

    /// Iterates over the elements in bucket/chain order.
    pub fn iter(&self) -> impl Iterator<Item = ElemId> + '_ {
        self.table.iter().flat_map(|bucket| {
            let mut out = Vec::new();
            let mut cursor = bucket.as_deref();
            while let Some(node) = cursor {
                out.push(node.elem);
                cursor = node.next.as_deref();
            }
            out
        })
    }

    fn should_grow(&self) -> bool {
        self.size * MAX_LOAD_DENOMINATOR >= self.table.len() * MAX_LOAD_NUMERATOR
    }

    fn grow(&mut self) {
        let new_buckets = self.table.len() * 2;
        let mut new_table: Vec<Option<Box<Node>>> = (0..new_buckets).map(|_| None).collect();
        let old_table = std::mem::take(&mut self.table);
        for bucket in old_table {
            let mut cursor = bucket;
            while let Some(mut node) = cursor {
                cursor = node.next.take();
                let idx = bucket_of(node.elem, new_buckets);
                node.next = new_table[idx].take();
                new_table[idx] = Some(node);
            }
        }
        self.table = new_table;
    }
}

impl Default for HashSet {
    fn default() -> Self {
        HashSet::new()
    }
}

impl SetInterface for HashSet {
    fn add(&mut self, v: ElemId) -> bool {
        require_non_null(v, "element");
        if self.contains(v) {
            return false;
        }
        if self.should_grow() {
            self.grow();
        }
        let idx = bucket_of(v, self.table.len());
        let node = Box::new(Node {
            elem: v,
            next: self.table[idx].take(),
        });
        self.table[idx] = Some(node);
        self.size += 1;
        true
    }

    fn contains(&self, v: ElemId) -> bool {
        require_non_null(v, "element");
        let idx = bucket_of(v, self.table.len());
        let mut cursor = self.table[idx].as_deref();
        while let Some(node) = cursor {
            if node.elem == v {
                return true;
            }
            cursor = node.next.as_deref();
        }
        false
    }

    fn remove(&mut self, v: ElemId) -> bool {
        require_non_null(v, "element");
        let idx = bucket_of(v, self.table.len());
        let mut cursor = &mut self.table[idx];
        loop {
            match cursor {
                None => return false,
                Some(node) if node.elem == v => {
                    let next = node.next.take();
                    *cursor = next;
                    self.size -= 1;
                    return true;
                }
                Some(node) => cursor = &mut node.next,
            }
        }
    }

    fn size(&self) -> usize {
        self.size
    }
}

impl Abstraction for HashSet {
    fn abstract_state(&self) -> AbstractState {
        AbstractState::Set(self.iter().collect())
    }

    fn check_invariants(&self) -> Result<(), String> {
        if !self.table.len().is_power_of_two() {
            return Err("bucket count is not a power of two".to_string());
        }
        let mut seen = std::collections::BTreeSet::new();
        let mut count = 0usize;
        for (idx, bucket) in self.table.iter().enumerate() {
            let mut cursor = bucket.as_deref();
            while let Some(node) = cursor {
                if node.elem.is_null() {
                    return Err("hash chain stores the null element".to_string());
                }
                if bucket_of(node.elem, self.table.len()) != idx {
                    return Err(format!("element {} is in the wrong bucket", node.elem));
                }
                if !seen.insert(node.elem) {
                    return Err(format!("duplicate element {} in the table", node.elem));
                }
                count += 1;
                cursor = node.next.as_deref();
            }
        }
        if count != self.size {
            return Err(format!(
                "size field is {} but the table holds {count} elements",
                self.size
            ));
        }
        Ok(())
    }
}

impl FromIterator<ElemId> for HashSet {
    fn from_iter<T: IntoIterator<Item = ElemId>>(iter: T) -> Self {
        let mut s = HashSet::new();
        for e in iter {
            s.add(e);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_contains_remove_size() {
        let mut s = HashSet::new();
        assert!(s.add(ElemId(1)));
        assert!(!s.add(ElemId(1)));
        assert!(s.add(ElemId(2)));
        assert_eq!(s.size(), 2);
        assert!(s.contains(ElemId(2)));
        assert!(s.remove(ElemId(2)));
        assert!(!s.remove(ElemId(2)));
        assert!(!s.contains(ElemId(2)));
        assert_eq!(s.size(), 1);
        assert!(s.check_invariants().is_ok());
    }

    #[test]
    fn grows_and_rehashes_preserving_contents() {
        let mut s = HashSet::new();
        let initial_buckets = s.buckets();
        for i in 1..=200u32 {
            assert!(s.add(ElemId(i)));
        }
        assert!(s.buckets() > initial_buckets);
        assert_eq!(s.size(), 200);
        for i in 1..=200u32 {
            assert!(s.contains(ElemId(i)), "lost element {i} after rehashing");
        }
        assert!(s.check_invariants().is_ok());
    }

    #[test]
    fn abstract_state_matches_listset_for_same_elements() {
        use crate::list_set::ListSet;
        let elems = [ElemId(3), ElemId(11), ElemId(19), ElemId(3)];
        let hs: HashSet = elems.into_iter().collect();
        let ls: ListSet = elems.into_iter().collect();
        assert_eq!(hs.abstract_state(), ls.abstract_state());
    }

    #[test]
    fn with_capacity_preallocates() {
        let s = HashSet::with_capacity(100);
        assert!(s.buckets() >= 100);
        assert!(s.is_empty());
    }

    #[test]
    #[should_panic(expected = "must not be null")]
    fn null_argument_panics() {
        HashSet::new().contains(semcommute_logic::NULL_ELEM);
    }

    #[test]
    fn colliding_elements_share_a_bucket_chain() {
        // Elements whose ids differ by a multiple of the bucket count collide
        // in the initial table.
        let mut s = HashSet::new();
        let b = s.buckets() as u32;
        let colliding = [ElemId(1), ElemId(1 + b), ElemId(1 + 2 * b)];
        for e in colliding {
            assert!(s.add(e));
        }
        for e in colliding {
            assert!(s.contains(e));
        }
        assert!(s.remove(colliding[1]));
        assert!(s.contains(colliding[0]) && s.contains(colliding[2]));
        assert!(s.check_invariants().is_ok());
    }
}
