//! `ListSet`: a set implemented as a singly-linked list.

use semcommute_logic::ElemId;
use semcommute_spec::AbstractState;

use crate::traits::{require_non_null, Abstraction, SetInterface};

/// A node of the singly-linked list.
#[derive(Debug, Clone)]
struct Node {
    elem: ElemId,
    next: Option<Box<Node>>,
}

/// A set of objects implemented as a singly-linked list, as in the paper.
///
/// New elements are inserted at the head of the list, so two `ListSet`s built
/// by adding the same elements in different orders have *different concrete
/// states* (different list orders) but the *same abstract state* (the same
/// set). This is exactly the situation that motivates semantic (abstract
/// state) commutativity reasoning instead of concrete-state reasoning
/// (Section 1.1 of the paper).
///
/// # Example
///
/// ```
/// use semcommute_logic::ElemId;
/// use semcommute_structures::{ListSet, SetInterface};
/// let mut s = ListSet::new();
/// assert!(s.add(ElemId(1)));
/// assert!(!s.add(ElemId(1)));
/// assert!(s.contains(ElemId(1)));
/// assert_eq!(s.size(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ListSet {
    head: Option<Box<Node>>,
    size: usize,
}

impl ListSet {
    /// Creates an empty set.
    pub fn new() -> ListSet {
        ListSet {
            head: None,
            size: 0,
        }
    }

    /// Iterates over the elements in list (insertion-dependent) order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            node: self.head.as_deref(),
        }
    }

    /// Returns `true` if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.size == 0
    }
}

/// Iterator over the elements of a [`ListSet`] in concrete list order.
pub struct Iter<'a> {
    node: Option<&'a Node>,
}

impl Iterator for Iter<'_> {
    type Item = ElemId;

    fn next(&mut self) -> Option<ElemId> {
        let node = self.node?;
        self.node = node.next.as_deref();
        Some(node.elem)
    }
}

impl SetInterface for ListSet {
    fn add(&mut self, v: ElemId) -> bool {
        require_non_null(v, "element");
        if self.contains(v) {
            return false;
        }
        let new_node = Box::new(Node {
            elem: v,
            next: self.head.take(),
        });
        self.head = Some(new_node);
        self.size += 1;
        true
    }

    fn contains(&self, v: ElemId) -> bool {
        require_non_null(v, "element");
        let mut cursor = self.head.as_deref();
        while let Some(node) = cursor {
            if node.elem == v {
                return true;
            }
            cursor = node.next.as_deref();
        }
        false
    }

    fn remove(&mut self, v: ElemId) -> bool {
        require_non_null(v, "element");
        let mut cursor = &mut self.head;
        loop {
            match cursor {
                None => return false,
                Some(node) if node.elem == v => {
                    let next = node.next.take();
                    *cursor = next;
                    self.size -= 1;
                    return true;
                }
                Some(node) => {
                    cursor = &mut node.next;
                }
            }
        }
    }

    fn size(&self) -> usize {
        self.size
    }
}

impl Abstraction for ListSet {
    fn abstract_state(&self) -> AbstractState {
        AbstractState::Set(self.iter().collect())
    }

    fn check_invariants(&self) -> Result<(), String> {
        let mut seen = std::collections::BTreeSet::new();
        let mut count = 0usize;
        for elem in self.iter() {
            if elem.is_null() {
                return Err("list node stores the null element".to_string());
            }
            if !seen.insert(elem) {
                return Err(format!("duplicate element {elem} in the list"));
            }
            count += 1;
            if count > self.size {
                return Err("list is longer than the recorded size".to_string());
            }
        }
        if count != self.size {
            return Err(format!(
                "size field is {} but the list holds {count} elements",
                self.size
            ));
        }
        Ok(())
    }
}

impl FromIterator<ElemId> for ListSet {
    fn from_iter<T: IntoIterator<Item = ElemId>>(iter: T) -> Self {
        let mut s = ListSet::new();
        for e in iter {
            s.add(e);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_contains_remove_size() {
        let mut s = ListSet::new();
        assert!(s.is_empty());
        assert!(s.add(ElemId(1)));
        assert!(s.add(ElemId(2)));
        assert!(!s.add(ElemId(1)));
        assert_eq!(s.size(), 2);
        assert!(s.contains(ElemId(1)));
        assert!(!s.contains(ElemId(3)));
        assert!(s.remove(ElemId(1)));
        assert!(!s.remove(ElemId(1)));
        assert_eq!(s.size(), 1);
        assert!(s.check_invariants().is_ok());
    }

    #[test]
    fn different_insertion_orders_same_abstract_state() {
        let a: ListSet = [ElemId(1), ElemId(2), ElemId(3)].into_iter().collect();
        let b: ListSet = [ElemId(3), ElemId(1), ElemId(2)].into_iter().collect();
        // Concrete orders differ…
        assert_ne!(a.iter().collect::<Vec<_>>(), b.iter().collect::<Vec<_>>());
        // …but the abstract states coincide.
        assert_eq!(a.abstract_state(), b.abstract_state());
    }

    #[test]
    fn remove_relinks_interior_and_head_nodes() {
        let mut s: ListSet = [ElemId(1), ElemId(2), ElemId(3)].into_iter().collect();
        assert!(s.remove(ElemId(2))); // interior (middle of list)
        assert!(s.remove(ElemId(3))); // current head (last inserted)
        assert_eq!(s.size(), 1);
        assert!(s.contains(ElemId(1)));
        assert!(s.check_invariants().is_ok());
    }

    #[test]
    #[should_panic(expected = "must not be null")]
    fn null_argument_panics() {
        let mut s = ListSet::new();
        s.add(semcommute_logic::NULL_ELEM);
    }

    #[test]
    fn abstraction_matches_contents() {
        let s: ListSet = [ElemId(5), ElemId(7)].into_iter().collect();
        assert_eq!(
            s.abstract_state(),
            AbstractState::Set([ElemId(5), ElemId(7)].into_iter().collect())
        );
    }
}
