//! Interface traits and the abstraction function.

use semcommute_logic::ElemId;
use semcommute_spec::AbstractState;

/// Connects a concrete data structure to its abstract state.
///
/// The abstraction function is the bridge the paper's technique relies on:
/// commutativity conditions and inverse operations are stated and verified
/// over [`AbstractState`]; because each implementation's operations preserve
/// the correspondence with the abstract semantics (checked by the conformance
/// tests), the verified conditions apply to the concrete structure that
/// actually executes at run time.
pub trait Abstraction {
    /// The abstraction function: the abstract state this concrete state
    /// represents.
    fn abstract_state(&self) -> AbstractState;

    /// Checks the representation invariant, returning a description of the
    /// first violation found.
    ///
    /// # Errors
    ///
    /// Returns `Err` with a human-readable message when the representation is
    /// corrupted (e.g. a stale size field or a `null` element stored in a
    /// node).
    fn check_invariants(&self) -> Result<(), String>;
}

/// The set interface implemented by [`crate::ListSet`] and [`crate::HashSet`].
///
/// Semantics follow the paper's `HashSet` specification (Figure 2-1); all
/// methods taking an element panic if it is `null`, mirroring the `v ~= null`
/// preconditions.
pub trait SetInterface: Abstraction {
    /// Adds `v` to the set. Returns `true` if the element was not already
    /// present.
    ///
    /// # Panics
    ///
    /// Panics if `v` is the `null` element.
    fn add(&mut self, v: ElemId) -> bool;

    /// Returns `true` iff `v` is in the set.
    ///
    /// # Panics
    ///
    /// Panics if `v` is the `null` element.
    fn contains(&self, v: ElemId) -> bool;

    /// Removes `v` from the set. Returns `true` if it was present.
    ///
    /// # Panics
    ///
    /// Panics if `v` is the `null` element.
    fn remove(&mut self, v: ElemId) -> bool;

    /// The number of elements in the set.
    fn size(&self) -> usize;
}

/// The map interface implemented by [`crate::AssociationList`] and
/// [`crate::HashTable`].
pub trait MapInterface: Abstraction {
    /// Returns `true` iff `k` is mapped.
    ///
    /// # Panics
    ///
    /// Panics if `k` is the `null` element.
    fn contains_key(&self, k: ElemId) -> bool;

    /// Returns the value mapped to `k`, or `None` if `k` is unmapped.
    ///
    /// # Panics
    ///
    /// Panics if `k` is the `null` element.
    fn get(&self, k: ElemId) -> Option<ElemId>;

    /// Maps `k` to `v`, returning the previously mapped value if any.
    ///
    /// # Panics
    ///
    /// Panics if `k` or `v` is the `null` element.
    fn put(&mut self, k: ElemId, v: ElemId) -> Option<ElemId>;

    /// Removes the mapping for `k`, returning the previously mapped value if
    /// any.
    ///
    /// # Panics
    ///
    /// Panics if `k` is the `null` element.
    fn remove(&mut self, k: ElemId) -> Option<ElemId>;

    /// The number of key/value pairs.
    fn size(&self) -> usize;
}

/// The integer-indexed map interface implemented by [`crate::ArrayList`].
pub trait ListInterface: Abstraction {
    /// Inserts `v` at index `i`, shifting every element at index ≥ `i` up one
    /// position.
    ///
    /// # Panics
    ///
    /// Panics if `i > self.size()` or `v` is the `null` element.
    fn add_at(&mut self, i: usize, v: ElemId);

    /// Returns the element at index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.size()`.
    fn get(&self, i: usize) -> ElemId;

    /// Returns the index of the first occurrence of `v`, or `None`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is the `null` element.
    fn index_of(&self, v: ElemId) -> Option<usize>;

    /// Returns the index of the last occurrence of `v`, or `None`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is the `null` element.
    fn last_index_of(&self, v: ElemId) -> Option<usize>;

    /// Removes and returns the element at index `i`, shifting every element
    /// above `i` down one position.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.size()`.
    fn remove_at(&mut self, i: usize) -> ElemId;

    /// Replaces the element at index `i` with `v`, returning the previous
    /// element.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.size()` or `v` is the `null` element.
    fn set(&mut self, i: usize, v: ElemId) -> ElemId;

    /// The number of elements.
    fn size(&self) -> usize;
}

/// Panics with a consistent message when a `null` element is passed where the
/// specification requires a non-null argument.
pub(crate) fn require_non_null(v: ElemId, what: &str) {
    assert!(!v.is_null(), "{what} must not be null");
}

#[cfg(test)]
mod tests {
    use super::*;
    use semcommute_logic::NULL_ELEM;

    #[test]
    fn require_non_null_accepts_real_elements() {
        require_non_null(ElemId(1), "element");
    }

    #[test]
    #[should_panic(expected = "element must not be null")]
    fn require_non_null_panics_on_null() {
        require_non_null(NULL_ELEM, "element");
    }
}
