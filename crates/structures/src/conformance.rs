//! Conformance checking of concrete structures against the abstract
//! specifications.
//!
//! In the paper, Jahob verifies that each implementation satisfies its
//! interface specification (including the abstraction function). Here the
//! correspondence is established by running a concrete structure and the
//! executable abstract semantics of `semcommute-spec` in lockstep over
//! operation traces and checking after every step that
//!
//! 1. the return values agree,
//! 2. the abstraction function maps the concrete state to the abstract state
//!    computed by the specification, and
//! 3. the representation invariant holds.
//!
//! The workspace test-suite drives these checkers from property-based tests
//! with randomly generated traces.

use semcommute_logic::{ElemId, Value};
use semcommute_spec::{apply_op, list_interface, map_interface, set_interface, AbstractState};

use crate::traits::{Abstraction, ListInterface, MapInterface, SetInterface};

/// An operation of a set trace. Element identities are small integers; zero is
/// remapped to a valid identity so that any `u8` makes a legal operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetOp {
    /// `add(v)`
    Add(u8),
    /// `contains(v)`
    Contains(u8),
    /// `remove(v)`
    Remove(u8),
    /// `size()`
    Size,
}

/// An operation of a map trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapOp {
    /// `put(k, v)`
    Put(u8, u8),
    /// `get(k)`
    Get(u8),
    /// `remove(k)`
    Remove(u8),
    /// `containsKey(k)`
    ContainsKey(u8),
    /// `size()`
    Size,
}

/// An operation of an ArrayList trace. Raw indices are reduced modulo the
/// current size (plus one for `AddAt`) so that every generated operation
/// satisfies its precondition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ListOp {
    /// `addAt(i, v)`
    AddAt(u8, u8),
    /// `get(i)`
    Get(u8),
    /// `indexOf(v)`
    IndexOf(u8),
    /// `lastIndexOf(v)`
    LastIndexOf(u8),
    /// `removeAt(i)`
    RemoveAt(u8),
    /// `set(i, v)`
    Set(u8, u8),
    /// `size()`
    Size,
}

fn elem(raw: u8) -> ElemId {
    // Avoid zero only to keep identities visually distinct from indices in
    // failure output; any non-null id is legal.
    ElemId(u32::from(raw) + 1)
}

fn check_state(
    step: usize,
    concrete: &dyn Abstraction,
    expected: &AbstractState,
) -> Result<(), String> {
    concrete
        .check_invariants()
        .map_err(|e| format!("step {step}: representation invariant violated: {e}"))?;
    let actual = concrete.abstract_state();
    if actual != *expected {
        return Err(format!(
            "step {step}: abstraction mismatch: concrete abstracts to {actual}, specification says {expected}"
        ));
    }
    Ok(())
}

fn check_result(step: usize, op: &str, got: &Value, expected: &Value) -> Result<(), String> {
    if got != expected {
        return Err(format!(
            "step {step}: `{op}` returned {got}, specification says {expected}"
        ));
    }
    Ok(())
}

/// Runs a trace against a set implementation and the set specification.
///
/// # Errors
///
/// Returns a description of the first divergence (return value, abstraction,
/// or invariant) found.
pub fn run_set_trace<S: SetInterface>(concrete: &mut S, trace: &[SetOp]) -> Result<(), String> {
    let iface = set_interface();
    let mut abstract_state = concrete.abstract_state();
    check_state(0, concrete, &abstract_state)?;
    for (step, op) in trace.iter().enumerate() {
        let step = step + 1;
        match *op {
            SetOp::Add(v) => {
                let got = Value::Bool(concrete.add(elem(v)));
                let (next, expected) =
                    apply_op(&iface, &abstract_state, "add", &[Value::Elem(elem(v))])
                        .map_err(|e| format!("step {step}: {e}"))?;
                check_result(step, "add", &got, &expected.expect("add returns"))?;
                abstract_state = next;
            }
            SetOp::Contains(v) => {
                let got = Value::Bool(concrete.contains(elem(v)));
                let (_, expected) =
                    apply_op(&iface, &abstract_state, "contains", &[Value::Elem(elem(v))])
                        .map_err(|e| format!("step {step}: {e}"))?;
                check_result(step, "contains", &got, &expected.expect("contains returns"))?;
            }
            SetOp::Remove(v) => {
                let got = Value::Bool(concrete.remove(elem(v)));
                let (next, expected) =
                    apply_op(&iface, &abstract_state, "remove", &[Value::Elem(elem(v))])
                        .map_err(|e| format!("step {step}: {e}"))?;
                check_result(step, "remove", &got, &expected.expect("remove returns"))?;
                abstract_state = next;
            }
            SetOp::Size => {
                let got = Value::Int(concrete.size() as i64);
                let (_, expected) = apply_op(&iface, &abstract_state, "size", &[])
                    .map_err(|e| format!("step {step}: {e}"))?;
                check_result(step, "size", &got, &expected.expect("size returns"))?;
            }
        }
        check_state(step, concrete, &abstract_state)?;
    }
    Ok(())
}

/// Runs a trace against a map implementation and the map specification.
///
/// # Errors
///
/// Returns a description of the first divergence found.
pub fn run_map_trace<M: MapInterface>(concrete: &mut M, trace: &[MapOp]) -> Result<(), String> {
    let iface = map_interface();
    let mut abstract_state = concrete.abstract_state();
    check_state(0, concrete, &abstract_state)?;
    let opt_to_value = |o: Option<ElemId>| Value::Elem(o.unwrap_or(semcommute_logic::NULL_ELEM));
    for (step, op) in trace.iter().enumerate() {
        let step = step + 1;
        match *op {
            MapOp::Put(k, v) => {
                let got = opt_to_value(concrete.put(elem(k), elem(v)));
                let (next, expected) = apply_op(
                    &iface,
                    &abstract_state,
                    "put",
                    &[Value::Elem(elem(k)), Value::Elem(elem(v))],
                )
                .map_err(|e| format!("step {step}: {e}"))?;
                check_result(step, "put", &got, &expected.expect("put returns"))?;
                abstract_state = next;
            }
            MapOp::Get(k) => {
                let got = opt_to_value(concrete.get(elem(k)));
                let (_, expected) =
                    apply_op(&iface, &abstract_state, "get", &[Value::Elem(elem(k))])
                        .map_err(|e| format!("step {step}: {e}"))?;
                check_result(step, "get", &got, &expected.expect("get returns"))?;
            }
            MapOp::Remove(k) => {
                let got = opt_to_value(concrete.remove(elem(k)));
                let (next, expected) =
                    apply_op(&iface, &abstract_state, "remove", &[Value::Elem(elem(k))])
                        .map_err(|e| format!("step {step}: {e}"))?;
                check_result(step, "remove", &got, &expected.expect("remove returns"))?;
                abstract_state = next;
            }
            MapOp::ContainsKey(k) => {
                let got = Value::Bool(concrete.contains_key(elem(k)));
                let (_, expected) = apply_op(
                    &iface,
                    &abstract_state,
                    "containsKey",
                    &[Value::Elem(elem(k))],
                )
                .map_err(|e| format!("step {step}: {e}"))?;
                check_result(
                    step,
                    "containsKey",
                    &got,
                    &expected.expect("containsKey returns"),
                )?;
            }
            MapOp::Size => {
                let got = Value::Int(concrete.size() as i64);
                let (_, expected) = apply_op(&iface, &abstract_state, "size", &[])
                    .map_err(|e| format!("step {step}: {e}"))?;
                check_result(step, "size", &got, &expected.expect("size returns"))?;
            }
        }
        check_state(step, concrete, &abstract_state)?;
    }
    Ok(())
}

/// Runs a trace against an ArrayList implementation and the list
/// specification. Indices are reduced modulo the current size so that every
/// operation satisfies its precondition; operations whose precondition cannot
/// be satisfied (e.g. `get` on an empty list) are skipped.
///
/// # Errors
///
/// Returns a description of the first divergence found.
pub fn run_list_trace<L: ListInterface>(concrete: &mut L, trace: &[ListOp]) -> Result<(), String> {
    let iface = list_interface();
    let mut abstract_state = concrete.abstract_state();
    check_state(0, concrete, &abstract_state)?;
    for (step, op) in trace.iter().enumerate() {
        let step = step + 1;
        let len = concrete.size();
        match *op {
            ListOp::AddAt(i, v) => {
                let i = (i as usize) % (len + 1);
                concrete.add_at(i, elem(v));
                let (next, _) = apply_op(
                    &iface,
                    &abstract_state,
                    "addAt",
                    &[Value::Int(i as i64), Value::Elem(elem(v))],
                )
                .map_err(|e| format!("step {step}: {e}"))?;
                abstract_state = next;
            }
            ListOp::Get(i) => {
                if len == 0 {
                    continue;
                }
                let i = (i as usize) % len;
                let got = Value::Elem(concrete.get(i));
                let (_, expected) =
                    apply_op(&iface, &abstract_state, "get", &[Value::Int(i as i64)])
                        .map_err(|e| format!("step {step}: {e}"))?;
                check_result(step, "get", &got, &expected.expect("get returns"))?;
            }
            ListOp::IndexOf(v) => {
                let got = Value::Int(concrete.index_of(elem(v)).map_or(-1, |i| i as i64));
                let (_, expected) =
                    apply_op(&iface, &abstract_state, "indexOf", &[Value::Elem(elem(v))])
                        .map_err(|e| format!("step {step}: {e}"))?;
                check_result(step, "indexOf", &got, &expected.expect("indexOf returns"))?;
            }
            ListOp::LastIndexOf(v) => {
                let got = Value::Int(concrete.last_index_of(elem(v)).map_or(-1, |i| i as i64));
                let (_, expected) = apply_op(
                    &iface,
                    &abstract_state,
                    "lastIndexOf",
                    &[Value::Elem(elem(v))],
                )
                .map_err(|e| format!("step {step}: {e}"))?;
                check_result(
                    step,
                    "lastIndexOf",
                    &got,
                    &expected.expect("lastIndexOf returns"),
                )?;
            }
            ListOp::RemoveAt(i) => {
                if len == 0 {
                    continue;
                }
                let i = (i as usize) % len;
                let got = Value::Elem(concrete.remove_at(i));
                let (next, expected) =
                    apply_op(&iface, &abstract_state, "removeAt", &[Value::Int(i as i64)])
                        .map_err(|e| format!("step {step}: {e}"))?;
                check_result(step, "removeAt", &got, &expected.expect("removeAt returns"))?;
                abstract_state = next;
            }
            ListOp::Set(i, v) => {
                if len == 0 {
                    continue;
                }
                let i = (i as usize) % len;
                let got = Value::Elem(concrete.set(i, elem(v)));
                let (next, expected) = apply_op(
                    &iface,
                    &abstract_state,
                    "set",
                    &[Value::Int(i as i64), Value::Elem(elem(v))],
                )
                .map_err(|e| format!("step {step}: {e}"))?;
                check_result(step, "set", &got, &expected.expect("set returns"))?;
                abstract_state = next;
            }
            ListOp::Size => {
                let got = Value::Int(concrete.size() as i64);
                let (_, expected) = apply_op(&iface, &abstract_state, "size", &[])
                    .map_err(|e| format!("step {step}: {e}"))?;
                check_result(step, "size", &got, &expected.expect("size returns"))?;
            }
        }
        check_state(step, concrete, &abstract_state)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ArrayList, AssociationList, HashSet, HashTable, ListSet};

    #[test]
    fn set_implementations_conform_on_a_fixed_trace() {
        let trace = [
            SetOp::Add(1),
            SetOp::Add(2),
            SetOp::Add(1),
            SetOp::Contains(1),
            SetOp::Remove(1),
            SetOp::Contains(1),
            SetOp::Size,
            SetOp::Remove(9),
        ];
        run_set_trace(&mut ListSet::new(), &trace).unwrap();
        run_set_trace(&mut HashSet::new(), &trace).unwrap();
    }

    #[test]
    fn map_implementations_conform_on_a_fixed_trace() {
        let trace = [
            MapOp::Put(1, 10),
            MapOp::Put(2, 20),
            MapOp::Put(1, 11),
            MapOp::Get(1),
            MapOp::Get(3),
            MapOp::ContainsKey(2),
            MapOp::Remove(1),
            MapOp::Remove(1),
            MapOp::Size,
        ];
        run_map_trace(&mut AssociationList::new(), &trace).unwrap();
        run_map_trace(&mut HashTable::new(), &trace).unwrap();
    }

    #[test]
    fn array_list_conforms_on_a_fixed_trace() {
        let trace = [
            ListOp::AddAt(0, 1),
            ListOp::AddAt(1, 2),
            ListOp::AddAt(0, 3),
            ListOp::Get(5),
            ListOp::IndexOf(1),
            ListOp::LastIndexOf(9),
            ListOp::Set(2, 4),
            ListOp::RemoveAt(1),
            ListOp::Size,
        ];
        run_list_trace(&mut ArrayList::new(), &trace).unwrap();
    }

    #[test]
    fn trace_on_empty_list_skips_unsatisfiable_operations() {
        let trace = [
            ListOp::Get(0),
            ListOp::RemoveAt(0),
            ListOp::Set(0, 1),
            ListOp::Size,
        ];
        run_list_trace(&mut ArrayList::new(), &trace).unwrap();
    }

    #[test]
    fn divergence_is_reported() {
        // A deliberately broken "set" that forgets to deduplicate.
        #[derive(Default)]
        struct BrokenSet(Vec<ElemId>);
        impl Abstraction for BrokenSet {
            fn abstract_state(&self) -> AbstractState {
                AbstractState::Set(self.0.iter().copied().collect())
            }
            fn check_invariants(&self) -> Result<(), String> {
                Ok(())
            }
        }
        impl SetInterface for BrokenSet {
            fn add(&mut self, v: ElemId) -> bool {
                self.0.push(v);
                true // wrong: claims the element was always new
            }
            fn contains(&self, v: ElemId) -> bool {
                self.0.contains(&v)
            }
            fn remove(&mut self, v: ElemId) -> bool {
                if let Some(p) = self.0.iter().position(|&e| e == v) {
                    self.0.remove(p);
                    true
                } else {
                    false
                }
            }
            fn size(&self) -> usize {
                self.0.len()
            }
        }
        let err =
            run_set_trace(&mut BrokenSet::default(), &[SetOp::Add(1), SetOp::Add(1)]).unwrap_err();
        assert!(err.contains("add"), "unexpected error: {err}");
    }
}
