//! `HashTable`: a map implemented as a separately chained hash table.

use semcommute_logic::ElemId;
use semcommute_spec::AbstractState;

use crate::traits::{require_non_null, Abstraction, MapInterface};

/// A node in a bucket chain holding one key/value pair.
#[derive(Debug, Clone)]
struct Node {
    key: ElemId,
    value: ElemId,
    next: Option<Box<Node>>,
}

fn bucket_of(key: ElemId, buckets: usize) -> usize {
    debug_assert!(buckets.is_power_of_two());
    let h = key.0.wrapping_mul(0x9E37_79B9);
    (h as usize) & (buckets - 1)
}

const INITIAL_BUCKETS: usize = 8;
const MAX_LOAD_NUMERATOR: usize = 3;
const MAX_LOAD_DENOMINATOR: usize = 4;

/// A map from objects to objects implemented with a separately chained hash
/// table — the paper's `HashTable`: an array of linked lists of key/value
/// pairs, with a hash function mapping keys to lists via the array.
///
/// # Example
///
/// ```
/// use semcommute_logic::ElemId;
/// use semcommute_structures::{HashTable, MapInterface};
/// let mut m = HashTable::new();
/// for i in 1..=50 {
///     m.put(ElemId(i), ElemId(i + 100));
/// }
/// assert_eq!(m.get(ElemId(7)), Some(ElemId(107)));
/// assert_eq!(m.remove(ElemId(7)), Some(ElemId(107)));
/// assert_eq!(m.size(), 49);
/// ```
#[derive(Debug, Clone)]
pub struct HashTable {
    table: Vec<Option<Box<Node>>>,
    size: usize,
}

impl HashTable {
    /// Creates an empty map.
    pub fn new() -> HashTable {
        HashTable {
            table: (0..INITIAL_BUCKETS).map(|_| None).collect(),
            size: 0,
        }
    }

    /// Creates an empty map with at least `capacity` buckets.
    pub fn with_capacity(capacity: usize) -> HashTable {
        let buckets = capacity.next_power_of_two().max(INITIAL_BUCKETS);
        HashTable {
            table: (0..buckets).map(|_| None).collect(),
            size: 0,
        }
    }

    /// Returns `true` if the map is empty.
    pub fn is_empty(&self) -> bool {
        self.size == 0
    }

    /// The number of buckets currently allocated.
    pub fn buckets(&self) -> usize {
        self.table.len()
    }

    /// Iterates over `(key, value)` pairs in bucket/chain order.
    pub fn iter(&self) -> impl Iterator<Item = (ElemId, ElemId)> + '_ {
        self.table.iter().flat_map(|bucket| {
            let mut out = Vec::new();
            let mut cursor = bucket.as_deref();
            while let Some(node) = cursor {
                out.push((node.key, node.value));
                cursor = node.next.as_deref();
            }
            out
        })
    }

    fn should_grow(&self) -> bool {
        self.size * MAX_LOAD_DENOMINATOR >= self.table.len() * MAX_LOAD_NUMERATOR
    }

    fn grow(&mut self) {
        let new_buckets = self.table.len() * 2;
        let mut new_table: Vec<Option<Box<Node>>> = (0..new_buckets).map(|_| None).collect();
        let old_table = std::mem::take(&mut self.table);
        for bucket in old_table {
            let mut cursor = bucket;
            while let Some(mut node) = cursor {
                cursor = node.next.take();
                let idx = bucket_of(node.key, new_buckets);
                node.next = new_table[idx].take();
                new_table[idx] = Some(node);
            }
        }
        self.table = new_table;
    }
}

impl Default for HashTable {
    fn default() -> Self {
        HashTable::new()
    }
}

impl MapInterface for HashTable {
    fn contains_key(&self, k: ElemId) -> bool {
        require_non_null(k, "key");
        let idx = bucket_of(k, self.table.len());
        let mut cursor = self.table[idx].as_deref();
        while let Some(node) = cursor {
            if node.key == k {
                return true;
            }
            cursor = node.next.as_deref();
        }
        false
    }

    fn get(&self, k: ElemId) -> Option<ElemId> {
        require_non_null(k, "key");
        let idx = bucket_of(k, self.table.len());
        let mut cursor = self.table[idx].as_deref();
        while let Some(node) = cursor {
            if node.key == k {
                return Some(node.value);
            }
            cursor = node.next.as_deref();
        }
        None
    }

    fn put(&mut self, k: ElemId, v: ElemId) -> Option<ElemId> {
        require_non_null(k, "key");
        require_non_null(v, "value");
        let idx = bucket_of(k, self.table.len());
        let mut cursor = self.table[idx].as_deref_mut();
        while let Some(node) = cursor {
            if node.key == k {
                let previous = node.value;
                node.value = v;
                return Some(previous);
            }
            cursor = node.next.as_deref_mut();
        }
        if self.should_grow() {
            self.grow();
        }
        let idx = bucket_of(k, self.table.len());
        let node = Box::new(Node {
            key: k,
            value: v,
            next: self.table[idx].take(),
        });
        self.table[idx] = Some(node);
        self.size += 1;
        None
    }

    fn remove(&mut self, k: ElemId) -> Option<ElemId> {
        require_non_null(k, "key");
        let idx = bucket_of(k, self.table.len());
        let mut cursor = &mut self.table[idx];
        loop {
            match cursor {
                None => return None,
                Some(node) if node.key == k => {
                    let previous = node.value;
                    let next = node.next.take();
                    *cursor = next;
                    self.size -= 1;
                    return Some(previous);
                }
                Some(node) => cursor = &mut node.next,
            }
        }
    }

    fn size(&self) -> usize {
        self.size
    }
}

impl Abstraction for HashTable {
    fn abstract_state(&self) -> AbstractState {
        AbstractState::Map(self.iter().collect())
    }

    fn check_invariants(&self) -> Result<(), String> {
        if !self.table.len().is_power_of_two() {
            return Err("bucket count is not a power of two".to_string());
        }
        let mut seen = std::collections::BTreeSet::new();
        let mut count = 0usize;
        for (idx, bucket) in self.table.iter().enumerate() {
            let mut cursor = bucket.as_deref();
            while let Some(node) = cursor {
                if node.key.is_null() || node.value.is_null() {
                    return Err("hash chain stores a null key or value".to_string());
                }
                if bucket_of(node.key, self.table.len()) != idx {
                    return Err(format!("key {} is in the wrong bucket", node.key));
                }
                if !seen.insert(node.key) {
                    return Err(format!("duplicate key {} in the table", node.key));
                }
                count += 1;
                cursor = node.next.as_deref();
            }
        }
        if count != self.size {
            return Err(format!(
                "size field is {} but the table holds {count} pairs",
                self.size
            ));
        }
        Ok(())
    }
}

impl FromIterator<(ElemId, ElemId)> for HashTable {
    fn from_iter<T: IntoIterator<Item = (ElemId, ElemId)>>(iter: T) -> Self {
        let mut m = HashTable::new();
        for (k, v) in iter {
            m.put(k, v);
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_remove_contains_size() {
        let mut m = HashTable::new();
        assert_eq!(m.put(ElemId(1), ElemId(10)), None);
        assert_eq!(m.put(ElemId(1), ElemId(11)), Some(ElemId(10)));
        assert_eq!(m.put(ElemId(2), ElemId(20)), None);
        assert_eq!(m.size(), 2);
        assert_eq!(m.get(ElemId(1)), Some(ElemId(11)));
        assert!(m.contains_key(ElemId(2)));
        assert_eq!(m.remove(ElemId(2)), Some(ElemId(20)));
        assert_eq!(m.remove(ElemId(2)), None);
        assert_eq!(m.size(), 1);
        assert!(m.check_invariants().is_ok());
    }

    #[test]
    fn grows_and_rehashes_preserving_mappings() {
        let mut m = HashTable::new();
        let initial = m.buckets();
        for i in 1..=200u32 {
            m.put(ElemId(i), ElemId(i + 1000));
        }
        assert!(m.buckets() > initial);
        for i in 1..=200u32 {
            assert_eq!(m.get(ElemId(i)), Some(ElemId(i + 1000)));
        }
        assert_eq!(m.size(), 200);
        assert!(m.check_invariants().is_ok());
    }

    #[test]
    fn abstract_state_matches_association_list() {
        use crate::assoc_list::AssociationList;
        let pairs = [
            (ElemId(3), ElemId(30)),
            (ElemId(11), ElemId(110)),
            (ElemId(3), ElemId(31)),
        ];
        let ht: HashTable = pairs.into_iter().collect();
        let al: AssociationList = pairs.into_iter().collect();
        assert_eq!(ht.abstract_state(), al.abstract_state());
    }

    #[test]
    fn put_overwrite_does_not_change_size() {
        let mut m = HashTable::with_capacity(64);
        m.put(ElemId(5), ElemId(50));
        m.put(ElemId(5), ElemId(51));
        m.put(ElemId(5), ElemId(52));
        assert_eq!(m.size(), 1);
        assert_eq!(m.get(ElemId(5)), Some(ElemId(52)));
    }

    #[test]
    #[should_panic(expected = "key must not be null")]
    fn null_key_panics() {
        HashTable::new().contains_key(semcommute_logic::NULL_ELEM);
    }

    #[test]
    fn colliding_keys_share_a_bucket_chain() {
        let mut m = HashTable::new();
        let b = m.buckets() as u32;
        let keys = [ElemId(2), ElemId(2 + b), ElemId(2 + 2 * b)];
        for (i, k) in keys.iter().enumerate() {
            m.put(*k, ElemId(100 + i as u32));
        }
        assert_eq!(m.get(keys[0]), Some(ElemId(100)));
        assert_eq!(m.get(keys[1]), Some(ElemId(101)));
        assert_eq!(m.get(keys[2]), Some(ElemId(102)));
        assert_eq!(m.remove(keys[1]), Some(ElemId(101)));
        assert_eq!(m.get(keys[0]), Some(ElemId(100)));
        assert_eq!(m.get(keys[2]), Some(ElemId(102)));
        assert!(m.check_invariants().is_ok());
    }
}
