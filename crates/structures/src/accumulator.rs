//! The `Accumulator`: a counter that clients can increase and read.

use semcommute_spec::AbstractState;

use crate::traits::Abstraction;

/// A counter supporting `increase` and `read`, as evaluated in the paper.
///
/// The abstract state is simply the counter value; the concrete state is the
/// same integer, so the abstraction function is the identity. The structure
/// is included because its commutativity conditions (Table 5.1) and inverse
/// operation (`increase(-v)`, Table 5.10) exercise the integer fragment of
/// the verifier.
///
/// # Example
///
/// ```
/// use semcommute_structures::Accumulator;
/// let mut acc = Accumulator::new();
/// acc.increase(10);
/// acc.increase(-3);
/// assert_eq!(acc.read(), 7);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Accumulator {
    value: i64,
}

impl Accumulator {
    /// Creates an accumulator holding zero.
    pub fn new() -> Accumulator {
        Accumulator { value: 0 }
    }

    /// Creates an accumulator holding `value`.
    pub fn with_value(value: i64) -> Accumulator {
        Accumulator { value }
    }

    /// Adds `v` (possibly negative) to the counter.
    pub fn increase(&mut self, v: i64) {
        self.value = self.value.wrapping_add(v);
    }

    /// Returns the current counter value.
    pub fn read(&self) -> i64 {
        self.value
    }
}

impl Abstraction for Accumulator {
    fn abstract_state(&self) -> AbstractState {
        AbstractState::Counter(self.value)
    }

    fn check_invariants(&self) -> Result<(), String> {
        // The representation is the abstract state; nothing can go wrong.
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_starts_at_zero() {
        assert_eq!(Accumulator::new().read(), 0);
        assert_eq!(Accumulator::default().read(), 0);
    }

    #[test]
    fn increase_accumulates() {
        let mut a = Accumulator::with_value(5);
        a.increase(3);
        a.increase(-10);
        assert_eq!(a.read(), -2);
    }

    #[test]
    fn abstraction_is_the_counter_value() {
        let mut a = Accumulator::new();
        a.increase(42);
        assert_eq!(a.abstract_state(), AbstractState::Counter(42));
        assert!(a.check_invariants().is_ok());
    }

    #[test]
    fn increase_then_inverse_restores_abstract_state() {
        // The inverse of increase(v) is increase(-v) (Table 5.10).
        let mut a = Accumulator::with_value(17);
        let before = a.abstract_state();
        a.increase(9);
        a.increase(-9);
        assert_eq!(a.abstract_state(), before);
    }
}
