//! Concrete linked data structure implementations for `semcommute`.
//!
//! The paper verifies commutativity conditions and inverse operations against
//! the *abstract* state of fully verified linked data structure
//! implementations (Jahob-verified Java classes). This crate provides the
//! corresponding Rust implementations of all six structures evaluated in the
//! paper:
//!
//! | Interface   | Implementations                      | Representation |
//! |-------------|--------------------------------------|----------------|
//! | Accumulator | [`Accumulator`]                      | integer counter |
//! | Set         | [`ListSet`], [`HashSet`]             | singly-linked list; separately chained hash table |
//! | Map         | [`AssociationList`], [`HashTable`]   | singly-linked list of pairs; separately chained hash table |
//! | ArrayList   | [`ArrayList`]                        | growable array |
//!
//! Each implementation exposes:
//!
//! * the operations of its interface with the paper's semantics (including
//!   the return values the inverse operations rely on),
//! * an **abstraction function** ([`Abstraction::abstract_state`]) mapping the
//!   concrete representation to the abstract state used by the specifications
//!   and commutativity conditions, and
//! * a **representation invariant** check ([`Abstraction::check_invariants`]).
//!
//! In the paper the correspondence between implementation and specification is
//! established by full functional verification in Jahob. Here the
//! correspondence is established by exhaustive property-based conformance
//! testing against the executable abstract semantics of `semcommute-spec`
//! (see `tests/` in this crate and the workspace integration tests); this
//! substitution is documented in `DESIGN.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accumulator;
pub mod array_list;
pub mod assoc_list;
pub mod conformance;
pub mod hash_set;
pub mod hash_table;
pub mod list_set;
pub mod traits;

pub use accumulator::Accumulator;
pub use array_list::ArrayList;
pub use assoc_list::AssociationList;
pub use hash_set::HashSet;
pub use hash_table::HashTable;
pub use list_set::ListSet;
pub use traits::{Abstraction, ListInterface, MapInterface, SetInterface};
