//! `ArrayList`: a dense integer-indexed map backed by a growable array.

use semcommute_logic::ElemId;
use semcommute_spec::AbstractState;

use crate::traits::{require_non_null, Abstraction, ListInterface};

const INITIAL_CAPACITY: usize = 8;

/// A map from a dense range of integers (starting at 0) to objects, backed by
/// a growable array — the paper's `ArrayList`.
///
/// `add_at` and `remove_at` shift the elements above the affected index, which
/// is what makes the ArrayList commutativity conditions (Tables 5.6 and 5.7)
/// by far the most intricate in the catalog: the conditions must reason about
/// how index ranges move.
///
/// The backing storage is managed manually (a boxed slice of optional
/// elements plus a length field) rather than delegating to `Vec`, so that the
/// representation invariant (`len ≤ capacity`, populated prefix, vacant
/// suffix) is a real invariant checked by [`Abstraction::check_invariants`].
///
/// # Panics vs. op errors
///
/// The [`ListInterface`] methods `assert!` their index bounds and then
/// `expect` the populated-prefix invariant — both panics are *internal
/// contract violations*, never reachable through the runtime operation
/// surface: `AnyStructure::apply` validates every index argument against the
/// current size before dispatching here, so an out-of-range index arriving
/// as an operation argument is rejected as a `BadArgument` op error (the
/// runtime/structure tests pin exactly this). The `expect`s fire only if the
/// populated-prefix invariant itself is broken, which `check_invariants`
/// would already report.
///
/// # Example
///
/// ```
/// use semcommute_logic::ElemId;
/// use semcommute_structures::{ArrayList, ListInterface};
/// let mut l = ArrayList::new();
/// l.add_at(0, ElemId(1));
/// l.add_at(1, ElemId(2));
/// l.add_at(1, ElemId(3));          // [1, 3, 2]
/// assert_eq!(l.get(1), ElemId(3));
/// assert_eq!(l.remove_at(0), ElemId(1));
/// assert_eq!(l.index_of(ElemId(2)), Some(1));
/// ```
#[derive(Debug, Clone)]
pub struct ArrayList {
    /// Backing storage; slots `0..len` are `Some`, slots `len..` are `None`.
    slots: Box<[Option<ElemId>]>,
    len: usize,
}

impl ArrayList {
    /// Creates an empty list.
    pub fn new() -> ArrayList {
        ArrayList {
            slots: vec![None; INITIAL_CAPACITY].into_boxed_slice(),
            len: 0,
        }
    }

    /// Creates an empty list with at least `capacity` slots preallocated.
    pub fn with_capacity(capacity: usize) -> ArrayList {
        ArrayList {
            slots: vec![None; capacity.max(1)].into_boxed_slice(),
            len: 0,
        }
    }

    /// Returns `true` if the list is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The number of allocated slots (exposed for tests and benchmarks).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Iterates over the elements in index order.
    pub fn iter(&self) -> impl Iterator<Item = ElemId> + '_ {
        self.slots[..self.len]
            .iter()
            .map(|s| s.expect("populated prefix"))
    }

    fn ensure_capacity(&mut self, needed: usize) {
        if needed <= self.slots.len() {
            return;
        }
        let new_capacity = (self.slots.len() * 2).max(needed).max(INITIAL_CAPACITY);
        let mut new_slots = vec![None; new_capacity].into_boxed_slice();
        new_slots[..self.len].clone_from_slice(&self.slots[..self.len]);
        self.slots = new_slots;
    }
}

impl Default for ArrayList {
    fn default() -> Self {
        ArrayList::new()
    }
}

impl ListInterface for ArrayList {
    fn add_at(&mut self, i: usize, v: ElemId) {
        require_non_null(v, "element");
        assert!(
            i <= self.len,
            "index {i} out of bounds for add_at (len {})",
            self.len
        );
        self.ensure_capacity(self.len + 1);
        // Shift the suffix up by one position, from the top down.
        let mut j = self.len;
        while j > i {
            self.slots[j] = self.slots[j - 1].take();
            j -= 1;
        }
        self.slots[i] = Some(v);
        self.len += 1;
    }

    fn get(&self, i: usize) -> ElemId {
        assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        self.slots[i].expect("populated prefix")
    }

    fn index_of(&self, v: ElemId) -> Option<usize> {
        require_non_null(v, "element");
        self.iter().position(|e| e == v)
    }

    fn last_index_of(&self, v: ElemId) -> Option<usize> {
        require_non_null(v, "element");
        let mut found = None;
        for (i, e) in self.iter().enumerate() {
            if e == v {
                found = Some(i);
            }
        }
        found
    }

    fn remove_at(&mut self, i: usize) -> ElemId {
        assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        let removed = self.slots[i].take().expect("populated prefix");
        // Shift the suffix down by one position.
        for j in i..self.len - 1 {
            self.slots[j] = self.slots[j + 1].take();
        }
        self.slots[self.len - 1] = None;
        self.len -= 1;
        removed
    }

    fn set(&mut self, i: usize, v: ElemId) -> ElemId {
        require_non_null(v, "element");
        assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        let previous = self.slots[i].replace(v);
        previous.expect("populated prefix")
    }

    fn size(&self) -> usize {
        self.len
    }
}

impl Abstraction for ArrayList {
    fn abstract_state(&self) -> AbstractState {
        AbstractState::List(self.iter().collect())
    }

    fn check_invariants(&self) -> Result<(), String> {
        if self.len > self.slots.len() {
            return Err(format!(
                "length {} exceeds capacity {}",
                self.len,
                self.slots.len()
            ));
        }
        for (i, slot) in self.slots.iter().enumerate() {
            match slot {
                Some(e) if i < self.len && e.is_null() => {
                    return Err(format!("slot {i} stores the null element"));
                }
                Some(_) if i < self.len => {}
                None if i < self.len => {
                    return Err(format!("slot {i} inside the populated prefix is vacant"))
                }
                Some(_) => return Err(format!("slot {i} beyond the length is populated")),
                None => {}
            }
        }
        Ok(())
    }
}

impl FromIterator<ElemId> for ArrayList {
    fn from_iter<T: IntoIterator<Item = ElemId>>(iter: T) -> Self {
        let mut l = ArrayList::new();
        for e in iter {
            let end = l.size();
            l.add_at(end, e);
        }
        l
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn list_of(ids: &[u32]) -> ArrayList {
        ids.iter().map(|&i| ElemId(i)).collect()
    }

    #[test]
    fn add_at_inserts_and_shifts() {
        let mut l = list_of(&[1, 2, 3]);
        l.add_at(1, ElemId(9));
        assert_eq!(
            l.iter().collect::<Vec<_>>(),
            vec![ElemId(1), ElemId(9), ElemId(2), ElemId(3)]
        );
        l.add_at(4, ElemId(7));
        assert_eq!(l.get(4), ElemId(7));
        assert_eq!(l.size(), 5);
        assert!(l.check_invariants().is_ok());
    }

    #[test]
    fn remove_at_returns_and_shifts() {
        let mut l = list_of(&[1, 2, 3, 4]);
        assert_eq!(l.remove_at(1), ElemId(2));
        assert_eq!(
            l.iter().collect::<Vec<_>>(),
            vec![ElemId(1), ElemId(3), ElemId(4)]
        );
        assert_eq!(l.remove_at(2), ElemId(4));
        assert_eq!(l.size(), 2);
        assert!(l.check_invariants().is_ok());
    }

    #[test]
    fn set_replaces_and_returns_previous() {
        let mut l = list_of(&[1, 2, 3]);
        assert_eq!(l.set(2, ElemId(8)), ElemId(3));
        assert_eq!(l.get(2), ElemId(8));
        assert_eq!(l.size(), 3);
    }

    #[test]
    fn index_queries_find_first_and_last_occurrences() {
        let l = list_of(&[5, 6, 5, 7]);
        assert_eq!(l.index_of(ElemId(5)), Some(0));
        assert_eq!(l.last_index_of(ElemId(5)), Some(2));
        assert_eq!(l.index_of(ElemId(9)), None);
        assert_eq!(l.last_index_of(ElemId(9)), None);
    }

    #[test]
    fn grows_beyond_initial_capacity() {
        let mut l = ArrayList::new();
        let initial = l.capacity();
        for i in 0..100u32 {
            l.add_at(l.size(), ElemId(i + 1));
        }
        assert!(l.capacity() > initial);
        assert_eq!(l.size(), 100);
        assert_eq!(l.get(99), ElemId(100));
        assert!(l.check_invariants().is_ok());
    }

    #[test]
    fn abstraction_is_the_sequence() {
        let l = list_of(&[4, 4, 2]);
        assert_eq!(
            l.abstract_state(),
            AbstractState::List(vec![ElemId(4), ElemId(4), ElemId(2)])
        );
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        list_of(&[1]).get(1);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn add_at_beyond_len_panics() {
        let mut l = list_of(&[1]);
        l.add_at(2, ElemId(2));
    }

    #[test]
    #[should_panic(expected = "must not be null")]
    fn null_element_panics() {
        let mut l = ArrayList::new();
        l.add_at(0, semcommute_logic::NULL_ELEM);
    }

    #[test]
    fn with_capacity_preallocates() {
        let l = ArrayList::with_capacity(32);
        assert!(l.capacity() >= 32);
        assert!(l.is_empty());
    }
}
