//! Property-based conformance of every concrete data structure against the
//! executable abstract specification — the substitution this reproduction
//! makes for Jahob's full functional verification of the implementations
//! (see DESIGN.md). Random operation traces are run in lockstep on the
//! concrete structure and on the abstract semantics; return values, the
//! abstraction function, and the representation invariant are checked after
//! every step.

use proptest::prelude::*;

use semcommute_structures::conformance::{
    run_list_trace, run_map_trace, run_set_trace, ListOp, MapOp, SetOp,
};
use semcommute_structures::{ArrayList, AssociationList, HashSet, HashTable, ListSet};

fn set_op() -> impl Strategy<Value = SetOp> {
    prop_oneof![
        (0u8..12).prop_map(SetOp::Add),
        (0u8..12).prop_map(SetOp::Contains),
        (0u8..12).prop_map(SetOp::Remove),
        Just(SetOp::Size),
    ]
}

fn map_op() -> impl Strategy<Value = MapOp> {
    prop_oneof![
        (0u8..10, 0u8..10).prop_map(|(k, v)| MapOp::Put(k, v)),
        (0u8..10).prop_map(MapOp::Get),
        (0u8..10).prop_map(MapOp::Remove),
        (0u8..10).prop_map(MapOp::ContainsKey),
        Just(MapOp::Size),
    ]
}

fn list_op() -> impl Strategy<Value = ListOp> {
    prop_oneof![
        (0u8..16, 0u8..6).prop_map(|(i, v)| ListOp::AddAt(i, v)),
        (0u8..16).prop_map(ListOp::Get),
        (0u8..6).prop_map(ListOp::IndexOf),
        (0u8..6).prop_map(ListOp::LastIndexOf),
        (0u8..16).prop_map(ListOp::RemoveAt),
        (0u8..16, 0u8..6).prop_map(|(i, v)| ListOp::Set(i, v)),
        Just(ListOp::Size),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn list_set_conforms(trace in proptest::collection::vec(set_op(), 0..60)) {
        run_set_trace(&mut ListSet::new(), &trace).map_err(TestCaseError::fail)?;
    }

    #[test]
    fn hash_set_conforms(trace in proptest::collection::vec(set_op(), 0..120)) {
        run_set_trace(&mut HashSet::new(), &trace).map_err(TestCaseError::fail)?;
    }

    #[test]
    fn association_list_conforms(trace in proptest::collection::vec(map_op(), 0..60)) {
        run_map_trace(&mut AssociationList::new(), &trace).map_err(TestCaseError::fail)?;
    }

    #[test]
    fn hash_table_conforms(trace in proptest::collection::vec(map_op(), 0..120)) {
        run_map_trace(&mut HashTable::new(), &trace).map_err(TestCaseError::fail)?;
    }

    #[test]
    fn array_list_conforms(trace in proptest::collection::vec(list_op(), 0..80)) {
        run_list_trace(&mut ArrayList::new(), &trace).map_err(TestCaseError::fail)?;
    }

    /// The two set implementations expose the same abstract behaviour: the
    /// same trace leaves them with the same abstract state.
    #[test]
    fn set_implementations_agree(trace in proptest::collection::vec(set_op(), 0..60)) {
        use semcommute_structures::Abstraction;
        let mut list_set = ListSet::new();
        let mut hash_set = HashSet::new();
        run_set_trace(&mut list_set, &trace).map_err(TestCaseError::fail)?;
        run_set_trace(&mut hash_set, &trace).map_err(TestCaseError::fail)?;
        prop_assert_eq!(list_set.abstract_state(), hash_set.abstract_state());
    }

    /// Likewise for the two map implementations.
    #[test]
    fn map_implementations_agree(trace in proptest::collection::vec(map_op(), 0..60)) {
        use semcommute_structures::Abstraction;
        let mut assoc = AssociationList::new();
        let mut table = HashTable::new();
        run_map_trace(&mut assoc, &trace).map_err(TestCaseError::fail)?;
        run_map_trace(&mut table, &trace).map_err(TestCaseError::fail)?;
        prop_assert_eq!(assoc.abstract_state(), table.abstract_state());
    }
}
