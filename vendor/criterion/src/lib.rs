//! A minimal, dependency-free, offline drop-in subset of the `criterion`
//! benchmarking API.
//!
//! The build environment for this workspace has no network access to
//! crates.io, so the real `criterion` crate cannot be fetched. This crate
//! implements the slice of its API used by the workspace benches: benchmark
//! groups, `bench_function` / `bench_with_input`, `Bencher::iter` /
//! `iter_batched`, and the `criterion_group!` / `criterion_main!` macros.
//! Instead of criterion's statistical analysis it reports the mean wall-clock
//! time per iteration over a bounded number of samples, printed as plain text
//! (one line per benchmark), which is enough to track relative regressions.

use std::fmt;
use std::time::{Duration, Instant};

/// Returns the argument, preventing the optimizer from removing the
/// computation that produced it.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, rendered `name/param`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// How per-iteration inputs of [`Bencher::iter_batched`] are grouped. The
/// distinction only affects real criterion's memory strategy; here every
/// iteration gets a fresh input either way.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many per batch.
    SmallInput,
    /// Large inputs: one per batch.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Measures closures; handed to benchmark functions.
pub struct Bencher {
    samples: usize,
    measured: Option<Duration>,
}

impl Bencher {
    fn new(samples: usize) -> Bencher {
        Bencher {
            samples,
            measured: None,
        }
    }

    /// Times `routine`, running it once for warm-up and then `samples` times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.measured = Some(start.elapsed() / self.samples as u32);
    }

    /// Times `routine` on fresh inputs produced by `setup`; setup time is not
    /// measured.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        let mut total = Duration::ZERO;
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.measured = Some(total / self.samples as u32);
    }
}

fn report(group: &str, id: &BenchmarkId, measured: Option<Duration>, samples: usize) {
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    match measured {
        Some(d) => println!(
            "bench {label:<55} {:>12.3} µs/iter ({samples} samples)",
            d.as_secs_f64() * 1e6
        ),
        None => println!("bench {label:<55} (no measurement)"),
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        // Real criterion requires >= 10; we honor small counts to stay fast.
        self.samples = samples.clamp(1, 20);
        self
    }

    /// Accepted for API compatibility; the sample count alone bounds runtime.
    pub fn measurement_time(&mut self, _duration: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn warm_up_time(&mut self, _duration: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher::new(self.samples);
        f(&mut bencher);
        report(&self.name, &id, bencher.measured, self.samples);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher::new(self.samples);
        f(&mut bencher, input);
        report(&self.name, &id, bencher.measured, self.samples);
        self
    }

    /// Finishes the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: 10,
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let samples = 10;
        let mut bencher = Bencher::new(samples);
        f(&mut bencher);
        report("", &id, bencher.measured, samples);
        self
    }
}

/// Declares a function running the listed benchmark functions in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
