//! A minimal, dependency-free, offline drop-in subset of the `proptest` API.
//!
//! The build environment for this workspace has no network access to
//! crates.io, so the real `proptest` crate cannot be fetched. This crate
//! implements the slice of its API that the workspace's property tests use:
//! deterministic pseudo-random generation through [`strategy::Strategy`], the
//! `proptest!` / `prop_compose!` / `prop_oneof!` macros, the `prop_assert*`
//! family, and the `collection` strategies. Shrinking of failing inputs is
//! intentionally not implemented — failures report the assertion message (and
//! any values it formats) instead of a minimized input.
//!
//! Generation is deterministic: every test function derives its RNG seed from
//! its own name, so failures are reproducible from run to run.

pub mod rng {
    //! A small deterministic PRNG (SplitMix64).

    /// Deterministic pseudo-random number generator used by all strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates a generator from a seed.
        pub fn new(seed: u64) -> TestRng {
            TestRng {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }

        /// Returns the next 64 pseudo-random bits (SplitMix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Returns a value uniformly distributed in `[0, n)` (0 when `n == 0`).
        pub fn below(&mut self, n: u64) -> u64 {
            if n == 0 {
                0
            } else {
                self.next_u64() % n
            }
        }

        /// Returns a pseudo-random boolean.
        pub fn bool(&mut self) -> bool {
            self.next_u64() & 1 == 1
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use std::rc::Rc;

    use crate::rng::TestRng;

    /// A source of pseudo-random values of an associated type.
    ///
    /// Unlike real proptest there is no value tree / shrinking; a strategy is
    /// just a sampling function.
    pub trait Strategy {
        /// The type of values produced.
        type Value;

        /// Samples one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps the produced values through `f`.
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { inner: self, f }
        }

        /// Erases the strategy type (also makes it cheaply cloneable).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.sample(rng)))
        }
    }

    /// A type-erased, cheaply cloneable strategy.
    pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, T> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// A strategy producing clones of a fixed value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between boxed alternative strategies (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Creates a union of the given alternatives.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].sample(rng)
        }
    }

    /// Strategy backed by a sampling closure (used by `prop_compose!`).
    pub struct ComposeFn<F>(F);

    impl<F> ComposeFn<F> {
        /// Wraps a sampling closure.
        pub fn new(f: F) -> ComposeFn<F> {
            ComposeFn(f)
        }
    }

    impl<T, F: Fn(&mut TestRng) -> T> Strategy for ComposeFn<F> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let span = (self.end as i128) - (self.start as i128);
                    if span <= 0 {
                        return self.start;
                    }
                    (self.start as i128 + rng.below(span as u64) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.sample(rng), self.1.sample(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
        type Value = (A::Value, B::Value, C::Value, D::Value);
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (
                self.0.sample(rng),
                self.1.sample(rng),
                self.2.sample(rng),
                self.3.sample(rng),
            )
        }
    }
}

pub mod bool {
    //! Boolean strategies.

    use crate::rng::TestRng;
    use crate::strategy::Strategy;

    /// The strategy producing uniformly random booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniformly random booleans.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.bool()
        }
    }
}

pub mod collection {
    //! Collection strategies: `vec`, `btree_set`, `btree_map`.

    use std::collections::{BTreeMap, BTreeSet};
    use std::ops::Range;

    use crate::rng::TestRng;
    use crate::strategy::Strategy;

    /// The permitted size range of a generated collection.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            SizeRange {
                lo: r.start,
                hi: r.end.max(r.start + 1),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.lo + rng.below((self.hi - self.lo) as u64) as usize
        }
    }

    /// Strategy for vectors of values from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy produced by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy for B-tree sets (size bounds the number of insert attempts,
    /// so duplicates may make the set smaller — within the requested range).
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy produced by [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy for B-tree maps (size bounds the number of insert attempts).
    pub fn btree_map<K, V>(key: K, value: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        BTreeMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }

    /// Strategy produced by [`btree_map`].
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn sample(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
            let n = self.size.pick(rng);
            (0..n)
                .map(|_| (self.key.sample(rng), self.value.sample(rng)))
                .collect()
        }
    }
}

pub mod test_runner {
    //! Test configuration and case-level error reporting.

    /// Configuration for a `proptest!` block.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` successful cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum TestCaseError {
        /// The case failed an assertion: the property does not hold.
        Fail(String),
        /// The case was rejected by `prop_assume!` and should not count.
        Reject(String),
    }

    impl TestCaseError {
        /// Creates a failure.
        pub fn fail<S: Into<String>>(message: S) -> TestCaseError {
            TestCaseError::Fail(message.into())
        }

        /// Creates a rejection.
        pub fn reject<S: Into<String>>(message: S) -> TestCaseError {
            TestCaseError::Reject(message.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "test case failed: {m}"),
                TestCaseError::Reject(m) => write!(f, "test case rejected: {m}"),
            }
        }
    }

    /// Derives a stable per-test RNG seed from the test name (FNV-1a).
    pub fn seed_from_name(name: &str) -> u64 {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

/// Fails the current test case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current test case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {:?} != {:?}", left, right),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{}: {:?} != {:?}", format!($($fmt)*), left, right),
            ));
        }
    }};
}

/// Fails the current test case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if left == right {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {:?} == {:?}",
                left, right
            )));
        }
    }};
}

/// Rejects the current test case unless `cond` holds (does not count as a
/// failure; too many rejections abort the test).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                format!("assumption failed: {}", stringify!($cond)),
            ));
        }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Defines a function returning a composite strategy.
#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])* $vis:vis fn $name:ident($($args:tt)*)
        ($($bind:ident in $strat:expr),+ $(,)?) -> $ret:ty $body:block) => {
        $(#[$meta])*
        $vis fn $name($($args)*) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::ComposeFn::new(move |rng: &mut $crate::rng::TestRng| {
                $(let $bind = $crate::strategy::Strategy::sample(&$strat, rng);)+
                $body
            })
        }
    };
}

/// Declares property tests. Each function body runs once per generated case;
/// `prop_assert*` report failures and `prop_assume!` rejects cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($bind:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::rng::TestRng::new($crate::test_runner::seed_from_name(
                concat!(module_path!(), "::", stringify!($name)),
            ));
            // Evaluate all strategy expressions up front (before any binding
            // name is introduced, so `x in x()` works), then shadow the names
            // with sampled values inside the loop.
            let strategies = ($($strat,)+);
            let mut passed: u32 = 0;
            let mut rejected: u32 = 0;
            while passed < config.cases {
                let ($(ref $bind,)+) = strategies;
                $(let $bind = $crate::strategy::Strategy::sample($bind, &mut rng);)+
                let outcome = (|| -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::core::result::Result::Ok(())
                })();
                match outcome {
                    ::core::result::Result::Ok(()) => passed += 1,
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {
                        rejected += 1;
                        if rejected > config.cases.saturating_mul(16).max(1024) {
                            panic!(
                                "proptest {}: too many rejected cases ({} rejections, {} passed)",
                                stringify!($name), rejected, passed
                            );
                        }
                    }
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!("proptest {} failed after {} passing cases: {}",
                               stringify!($name), passed, msg);
                    }
                }
            }
        }
        $crate::__proptest_items!(($config) $($rest)*);
    };
}

pub mod prelude {
    //! The commonly used subset, mirroring `proptest::prelude`.

    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_compose, prop_oneof,
        proptest,
    };
}
