//! A minimal, dependency-free, offline drop-in subset of the `parking_lot`
//! API, backed by `std::sync`.
//!
//! The build environment for this workspace has no network access to
//! crates.io, so the real `parking_lot` crate cannot be fetched. This crate
//! provides the non-poisoning `Mutex` / `RwLock` interface the workspace
//! uses; a thread that panics while holding a lock does not poison it (the
//! poison error is ignored, matching parking_lot semantics).

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A mutual-exclusion primitive whose `lock` never returns a poison error.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(std::sync::MutexGuard<'a, T>);

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(MutexGuard(guard)),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard(e.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// A reader-writer lock whose guards never return poison errors.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// RAII read guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

/// RAII write guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Creates a lock protecting `value`.
    pub fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}
